package testbench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func sys() *core.System { return core.Default() }

func TestFig1(t *testing.T) {
	f, err := RunFig1(sys(), 0.10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Golden) != 500 || len(f.Defective) != 500 {
		t.Fatal("sample counts wrong")
	}
	// Both traces inside the unit square; visibly different.
	worst := 0.0
	for i := range f.Golden {
		for _, p := range []struct{ x, y float64 }{
			{f.Golden[i].X, f.Golden[i].Y}, {f.Defective[i].X, f.Defective[i].Y},
		} {
			if p.x < 0 || p.x > 1 || p.y < 0 || p.y > 1 {
				t.Fatalf("trace escapes unit square: %+v", p)
			}
		}
		d := math.Hypot(f.Golden[i].X-f.Defective[i].X, f.Golden[i].Y-f.Defective[i].Y)
		if d > worst {
			worst = d
		}
	}
	if worst < 0.01 {
		t.Fatal("defective trace indistinguishable from golden")
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "i,golden_x") || strings.Count(csv, "\n") != 501 {
		t.Fatal("CSV malformed")
	}
}

func TestTable1Render(t *testing.T) {
	tab := RunTable1()
	s := tab.Render()
	for _, want := range []string{"3000", "1800", "600", "X axis", "Y axis", "0.55", "L = 180 nm"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 8 { // header + 6 rows + footer
		t.Fatalf("unexpected table shape:\n%s", s)
	}
}

func TestFig4(t *testing.T) {
	f, err := RunFig4(41)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Curves) != 6 {
		t.Fatalf("curves = %d, want 6", len(f.Curves))
	}
	for i, pts := range f.Curves {
		if len(pts) < 10 {
			t.Fatalf("curve %d has only %d points", i+1, len(pts))
		}
		for _, p := range pts {
			if p.X < -1e-9 || p.X > 1+1e-9 || p.Y < -1e-9 || p.Y > 1+1e-9 {
				t.Fatalf("curve %d point outside square: %+v", i+1, p)
			}
		}
	}
	if !strings.HasPrefix(f.CSV(), "curve,x,y\n") {
		t.Fatal("CSV header wrong")
	}
}

func TestFig4MCEnvelope(t *testing.T) {
	f, err := RunFig4MC(2, 60, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Xs) < 5 {
		t.Fatalf("envelope covers only %d columns", len(f.Xs))
	}
	for i := range f.Xs {
		if f.P2_5[i] > f.P97_5[i] {
			t.Fatalf("envelope inverted at column %d", i)
		}
	}
	// The paper's claim: nominal (and measured) boundaries lie in the MC
	// band.
	if frac := f.NominalInsideEnvelope(); frac < 0.9 {
		t.Fatalf("nominal inside envelope only %.0f%% of columns", frac*100)
	}
	if !strings.Contains(f.Render(), "Monte Carlo") {
		t.Fatal("render missing title")
	}
	if !strings.HasPrefix(f.CSV(), "x,p2_5") {
		t.Fatal("CSV header wrong")
	}
	if _, err := RunFig4MC(99, 10, 10, 1); err == nil {
		t.Fatal("bad monitor index accepted")
	}
}

func TestFig6(t *testing.T) {
	f, err := RunFig6(sys(), 0.10, 101)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumZones < 10 || f.NumZones > 30 {
		t.Fatalf("zones = %d", f.NumZones)
	}
	if len(f.GoldenSeq) < 5 || len(f.DefectSeq) < 5 {
		t.Fatal("traversal sequences too short")
	}
	r := f.Render()
	if !strings.Contains(r, "000000 (0)") {
		t.Fatalf("origin zone missing from render:\n%s", r)
	}
	if !strings.Contains(r, "->") {
		t.Fatal("traversal arrows missing")
	}
}

func TestFig7(t *testing.T) {
	f, err := RunFig7(sys(), 0.10, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Headline number: paper reports NDF = 0.1021 at +10%.
	if f.NDF < 0.05 || f.NDF > 0.2 {
		t.Fatalf("NDF = %v, want same band as paper's 0.1021", f.NDF)
	}
	// Hamming chronogram is mostly 0/1 with occasional 2 (Fig. 7).
	count := map[int]int{}
	for _, h := range f.Hamming {
		count[h]++
	}
	if count[0] < len(f.Hamming)/2 {
		t.Fatal("golden and defect disagree more than half the period")
	}
	maxH := 0
	for h := range count {
		if h > maxH {
			maxH = h
		}
	}
	if maxH > 3 {
		t.Fatalf("max Hamming distance %d, paper shows 2", maxH)
	}
	if !strings.Contains(f.Render(), "0.1021") {
		t.Fatal("render should cite the paper value")
	}
	if !strings.HasPrefix(f.CSV(), "t_us,") {
		t.Fatal("CSV header wrong")
	}
}

func TestFig8(t *testing.T) {
	f, err := RunFig8(sys(), 0.20, 9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Devs) != 9 || f.Devs[4] != 0 {
		t.Fatalf("sweep grid wrong: %v", f.Devs)
	}
	if f.NDFs[4] != 0 {
		t.Fatalf("NDF at 0 deviation = %v", f.NDFs[4])
	}
	if f.Threshold <= 0 {
		t.Fatalf("threshold = %v", f.Threshold)
	}
	// Ends of the sweep must FAIL, center must PASS.
	r := f.Render()
	lines := strings.Split(strings.TrimSpace(r), "\n")
	if !strings.Contains(lines[2], "FAIL") {
		t.Fatalf("left extreme should FAIL:\n%s", r)
	}
	if !strings.Contains(lines[2+4], "PASS") {
		t.Fatalf("center should PASS:\n%s", r)
	}
	if !strings.HasPrefix(f.CSV(), "dev,ndf,pass\n") {
		t.Fatal("CSV header wrong")
	}
}

func TestNoiseDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	// Small but meaningful: 1% must be detected at high rate with the
	// paper's noise level; use modest trial counts to keep the test fast.
	n, err := RunNoiseDetection(sys(), 0.005, []float64{0.01, 0.05}, 12, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if n.Threshold <= 0 {
		t.Fatal("null threshold not positive — noise produced no NDF floor")
	}
	if n.Detect[1] < 0.9 {
		t.Fatalf("5%% deviation detection = %v, want ~1", n.Detect[1])
	}
	// The 1% claim: detection well above the false-alarm rate.
	if n.Detect[0] <= n.FalseRate {
		t.Fatalf("1%% detection (%v) not above false-alarm rate (%v)", n.Detect[0], n.FalseRate)
	}
	if !strings.Contains(n.Render(), "detection") {
		t.Fatal("render malformed")
	}
}

func TestAblLinear(t *testing.T) {
	a, err := RunAblLinear(sys(), []float64{-0.10, -0.05, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if a.LinearUm2 <= a.NonlinearUm2*0.5 {
		t.Fatalf("cost model inverted: linear %v vs nonlinear %v", a.LinearUm2, a.NonlinearUm2)
	}
	for i := range a.Devs {
		if a.NonlinearNDF[i] <= 0 || a.LinearNDF[i] <= 0 {
			t.Fatalf("sensitivity lost at %v", a.Devs[i])
		}
	}
	if !strings.Contains(a.Render(), "zoning ablation") {
		t.Fatal("render malformed")
	}
}

func TestAblCounter(t *testing.T) {
	a, err := RunAblCounter(sys(), 0.10, []int{8, 16}, []float64{1e6, 10e6})
	if err != nil {
		t.Fatal(err)
	}
	if a.ExactNDF <= 0 {
		t.Fatal("exact NDF must be positive at +10%")
	}
	// Faster clock at fixed bits must not be (much) worse.
	for i := range a.Bits {
		if a.AbsErr[i][1] > a.AbsErr[i][0]+0.01 {
			t.Fatalf("10 MHz worse than 1 MHz at %d bits: %v", a.Bits[i], a.AbsErr[i])
		}
	}
	// All quantization errors should be small vs the signal.
	for _, row := range a.AbsErr {
		for _, e := range row {
			if e > a.ExactNDF/2 {
				t.Fatalf("quantization error %v too large vs NDF %v", e, a.ExactNDF)
			}
		}
	}
	if !strings.Contains(a.Render(), "capture ablation") {
		t.Fatal("render malformed")
	}
}

func TestAblRegression(t *testing.T) {
	train := []float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20}
	test := []float64{-0.12, -0.04, 0.07, 0.12}
	a, err := RunAblRegression(sys(), train, test)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrainRMSE > 0.05 || a.TestRMSE > 0.10 {
		t.Fatalf("regression quality poor: train %v test %v", a.TrainRMSE, a.TestRMSE)
	}
	if !strings.Contains(a.Render(), "RMSE") {
		t.Fatal("render malformed")
	}
}
