package testbench

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/campaign"
)

// payloadJSON canonicalizes a result payload for bit-level comparison.
func payloadJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSharderYieldBitIdentical pins the fabric's core contract on the
// yield campaign: chunk-aligned shards run independently (even at
// different worker counts) and merged in span order finalize to the
// exact payload of the single-node run.
func TestSharderYieldBitIdentical(t *testing.T) {
	ctx := context.Background()
	const chunk = 128
	spec := Spec{
		Campaign: "yield",
		Seed:     42,
		Chunk:    chunk,
		Params:   YieldParams{N: 600, ComponentSigma: 0.03, Tol: 0.05},
	}
	single, err := Run(ctx, spec, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := payloadJSON(t, single)

	sr, err := Sharder(ctx, spec, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trials != 600 {
		t.Fatalf("Trials = %d, want 600", sr.Trials)
	}
	cuts := []int{0, 2 * chunk, 3 * chunk, 600}
	var merged []byte
	for s := 0; s+1 < len(cuts); s++ {
		// Each shard on its own worker bound: results must not depend on it.
		blob, err := sr.Run(ctx, campaign.Span{Lo: cuts[s], Hi: cuts[s+1]}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = blob
		} else if merged, err = sr.Merge(merged, blob); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sr.Finalize(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("sharded payload differs from single-node:\n  sharded: %s\n  single:  %s", got, want)
	}
}

// TestSharderYieldResumeBitIdentical pins checkpoint/resume through the
// blob codec: cut a run at a durable checkpoint, restore the blob as
// init for the rest of the span, and land on the single-node payload.
func TestSharderYieldResumeBitIdentical(t *testing.T) {
	ctx := context.Background()
	spec := Spec{
		Campaign:   "yield",
		Seed:       7,
		Chunk:      64,
		Checkpoint: 128,
		Params:     YieldParams{N: 500, ComponentSigma: 0.03, Tol: 0.05},
	}
	sr, err := Sharder(ctx, spec, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	type ck struct {
		blob    []byte
		through int
	}
	var cks []ck
	full, err := sr.Run(ctx, campaign.Span{Lo: 0, Hi: 500}, nil, func(acc []byte, through int) error {
		cks = append(cks, ck{bytes.Clone(acc), through})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 chunks of 64 (last partial) at cadence 2 chunks: checkpoints at
	// 128, 256, 384.
	if len(cks) != 3 {
		t.Fatalf("%d checkpoints, want 3", len(cks))
	}
	fullRes, err := sr.Finalize(full)
	if err != nil {
		t.Fatal(err)
	}
	want := payloadJSON(t, fullRes)
	for _, c := range cks {
		resumed, err := sr.Run(ctx, campaign.Span{Lo: c.through, Hi: 500}, c.blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sr.Finalize(resumed)
		if err != nil {
			t.Fatal(err)
		}
		if got := payloadJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("resume from %d differs from uninterrupted:\n  resumed: %s\n  full:    %s", c.through, got, want)
		}
	}
}

// TestSharderFaultsBitIdentical covers the ordered-concatenation
// accumulator: fault cases sharded mid-list merge back into the exact
// single-node table.
func TestSharderFaultsBitIdentical(t *testing.T) {
	ctx := context.Background()
	spec := Spec{Campaign: "faults", Chunk: 4}
	single, err := Run(ctx, spec, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := payloadJSON(t, single)
	sr, err := Sharder(ctx, spec, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	mid := (sr.Trials / 2 / 4) * 4 // chunk-aligned midpoint
	a, err := sr.Run(ctx, campaign.Span{Lo: 0, Hi: mid}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sr.Run(ctx, campaign.Span{Lo: mid, Hi: sr.Trials}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sr.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sr.Finalize(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("sharded fault table differs from single-node:\n  sharded: %s\n  single:  %s", got, want)
	}
}

func TestSharderRejects(t *testing.T) {
	ctx := context.Background()
	if _, err := Sharder(ctx, Spec{Campaign: "fig4"}); err == nil {
		t.Fatal("non-shardable campaign accepted")
	}
	if _, err := Sharder(ctx, Spec{Campaign: "yield", Checkpoint: -1, Params: YieldParams{N: 10, ComponentSigma: 0.02, Tol: 0.05}}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
	sr, err := Sharder(ctx, Spec{Campaign: "yield", Params: YieldParams{N: 100, ComponentSigma: 0.02, Tol: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Run(ctx, campaign.Span{Lo: 0, Hi: 101}, nil, nil); err == nil {
		t.Fatal("span past the campaign accepted")
	}
	if _, err := sr.Run(ctx, campaign.Span{Lo: 0, Hi: 50}, []byte("garbage"), nil); err == nil {
		t.Fatal("malformed init blob accepted")
	}
	if !Shardable("yield") || Shardable("fig4") {
		t.Fatal("Shardable misreports")
	}
}
