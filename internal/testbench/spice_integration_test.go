package testbench

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/signature"
)

// TestSpiceBankEndToEnd runs the full test path with every zone bit
// produced by a Newton-Raphson DC solution of the Fig. 2 transistor
// netlist — the closest software stand-in for the fabricated monitor.
// A coarser 1 MHz capture keeps the solve count tractable; the NDF must
// agree with the analytic bank under identical capture settings.
func TestSpiceBankEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("transistor-level bank is slow")
	}
	spiceBank, err := monitor.NewSpiceTableI()
	if err != nil {
		t.Fatal(err)
	}
	ref := core.Default()
	capCfg := signature.CaptureConfig{ClockHz: 1e6, CounterBits: 16}

	spiceSys, err := core.NewSystem(ref.Stimulus, ref.CUT, spiceBank, capCfg)
	if err != nil {
		t.Fatal(err)
	}
	anaSys, err := core.NewSystem(ref.Stimulus, ref.CUT, ref.Bank, capCfg)
	if err != nil {
		t.Fatal(err)
	}

	ndfOf := func(sys *core.System) float64 {
		t.Helper()
		g, err := sys.CapturedSignature(sys.CUT, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		cut, err := sys.Shifted(0.10)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.CapturedSignature(cut, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, err := ndf.NDF(d, g)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	vSpice := ndfOf(spiceSys)
	vAna := ndfOf(anaSys)
	if vSpice <= 0 {
		t.Fatal("transistor-level bank produced zero NDF at +10%")
	}
	// The two models place boundaries within ~0.02 V of each other, so
	// their NDFs must agree closely.
	if math.Abs(vSpice-vAna) > 0.05 {
		t.Fatalf("transistor-level NDF %v vs analytic %v diverge", vSpice, vAna)
	}
}

// TestSpiceBankZoneCodesAgree compares zone codes of the two models over
// a coarse grid, far from boundaries.
func TestSpiceBankZoneCodesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("transistor-level bank is slow")
	}
	spiceBank, err := monitor.NewSpiceTableI()
	if err != nil {
		t.Fatal(err)
	}
	anaBank := monitor.NewAnalyticTableI()
	mismatches, total := 0, 0
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, y := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			ca := anaBank.Classify(x, y)
			cs := spiceBank.Classify(x, y)
			total++
			if ca != cs {
				// Disagreements are only legitimate within ~0.03 V of
				// an analytic boundary (model placement differences).
				nearBoundary := false
				for _, m := range anaBank.Monitors() {
					a := m.(*monitor.Analytic)
					for _, d := range []float64{-0.03, 0.03} {
						if a.Bit(x+d, y) != a.Bit(x, y) || a.Bit(x, y+d) != a.Bit(x, y) {
							nearBoundary = true
						}
					}
				}
				if !nearBoundary {
					t.Fatalf("codes diverge far from boundaries at (%v,%v): %06b vs %06b",
						x, y, ca, cs)
				}
				mismatches++
			}
		}
	}
	// Six boundary bands of ±0.03 V cover a large fraction of the unit
	// square, so a sizable minority of coarse-grid points legitimately
	// sit in the offset zone between the two models; what matters is
	// that no disagreement occurs away from boundaries (checked above)
	// and agreement holds for the majority.
	if mismatches > total/2 {
		t.Fatalf("%d/%d grid points disagree — models inconsistent", mismatches, total)
	}
}

func TestFig4SpiceCurvesMatchAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("transistor-level tracing is slow")
	}
	spiceFig, err := RunFig4Spice(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(spiceFig.Curves) != 6 {
		t.Fatalf("spice curves = %d", len(spiceFig.Curves))
	}
	cfgs := monitor.TableI()
	for i, pts := range spiceFig.Curves {
		if len(pts) < 3 {
			t.Fatalf("curve %d traced only %d points", i+1, len(pts))
		}
		am := monitor.MustAnalytic(cfgs[i])
		worst := 0.0
		for _, p := range pts {
			// Distance to the analytic boundary along whichever axis is
			// well-conditioned for this curve segment.
			d := math.Inf(1)
			if ya, ok := am.BoundaryY(p.X, 0, 1); ok {
				d = math.Min(d, math.Abs(ya-p.Y))
			}
			if xa, ok := am.BoundaryX(p.Y, 0, 1); ok {
				d = math.Min(d, math.Abs(xa-p.X))
			}
			if math.IsInf(d, 1) {
				continue // analytic misses the column at curve ends
			}
			if d > worst {
				worst = d
			}
		}
		// Transistor-level boundaries track the design equations within
		// a load/CLM offset budget everywhere on all six curves.
		if worst > 0.1 {
			t.Fatalf("curve %d: worst spice-vs-analytic offset %v", i+1, worst)
		}
	}
}
