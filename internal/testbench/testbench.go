// Package testbench contains the experiment drivers that regenerate
// every table and figure of the paper's evaluation, plus the ablations
// called out in DESIGN.md. Each driver returns a plain data struct with
// a text rendering so the cmd tools, the examples, and the benchmark
// harness all share one implementation.
package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/lissajous"
	"repro/internal/monitor"
	"repro/internal/ndf"
)

// Fig1 holds the golden and deviated Lissajous traces of Fig. 1.
type Fig1 struct {
	Shift     float64
	Golden    []lissajous.Point
	Defective []lissajous.Point
}

// RunFig1 samples both curves with n points per period. It is a thin
// wrapper over the campaign registry ("fig1").
func RunFig1(sys *core.System, shift float64, n int) (*Fig1, error) {
	return runAs[Fig1](legacyCtx(), Spec{
		Campaign: "fig1",
		Params:   Fig1Params{Shift: shift, Points: n},
	}, WithSystem(sys))
}

// runFig1 is the registry implementation behind RunFig1.
func runFig1(sys *core.System, shift float64, n int) (*Fig1, error) {
	g, err := sys.Lissajous(sys.CUT)
	if err != nil {
		return nil, err
	}
	dev, err := sys.Shifted(shift)
	if err != nil {
		return nil, err
	}
	d, err := sys.Lissajous(dev)
	if err != nil {
		return nil, err
	}
	gp, err := g.Sample(n)
	if err != nil {
		return nil, err
	}
	dp, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	return &Fig1{Shift: shift, Golden: gp, Defective: dp}, nil
}

// CSV renders the traces as "t_index,golden_x,golden_y,def_x,def_y".
func (f *Fig1) CSV() string {
	var b strings.Builder
	b.WriteString("i,golden_x,golden_y,defective_x,defective_y\n")
	for i := range f.Golden {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%.6f,%.6f\n",
			i, f.Golden[i].X, f.Golden[i].Y, f.Defective[i].X, f.Defective[i].Y)
	}
	return b.String()
}

// Table1 reproduces TABLE I (input configuration of the six curves).
type Table1 struct {
	Configs []monitor.Config
}

// RunTable1 returns the published configuration table (registry campaign
// "table1").
func RunTable1() *Table1 { return &Table1{Configs: monitor.TableI()} }

// Render formats the table like the paper.
func (t *Table1) Render() string {
	var b strings.Builder
	b.WriteString("    M1    M2    M3    M4    V1       V2       V3       V4\n")
	for i, c := range t.Configs {
		fmt.Fprintf(&b, "%d   %-5g %-5g %-5g %-5g", i+1,
			c.WidthsNm[0], c.WidthsNm[1], c.WidthsNm[2], c.WidthsNm[3])
		for _, in := range c.Inputs {
			switch in.Kind {
			case monitor.DriveX:
				fmt.Fprintf(&b, " %-8s", "X axis")
			case monitor.DriveY:
				fmt.Fprintf(&b, " %-8s", "Y axis")
			default:
				fmt.Fprintf(&b, " %-8.2f", in.DC)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(widths in nm, L = %g nm)\n", t.Configs[0].LengthNm)
	return b.String()
}

// Fig4 holds the six traced control curves, optionally with Monte Carlo
// envelopes (per-column quantiles of the boundary position).
type Fig4 struct {
	Names  []string
	Curves [][]monitor.Point
	// Envelopes[i] is nil without MC; otherwise rows of (x, p2.5, p97.5).
	Envelopes [][][3]float64
}

// RunFig4 traces every Table I boundary at the given resolution. It is a
// thin wrapper over the campaign registry ("fig4").
func RunFig4(n int) (*Fig4, error) {
	return runAs[Fig4](legacyCtx(), Spec{
		Campaign: "fig4",
		Params:   Fig4Params{Points: n},
	})
}

// runFig4 is the registry implementation behind RunFig4.
func runFig4(ctx context.Context, n int) (*Fig4, error) {
	out := &Fig4{}
	for _, cfg := range monitor.TableI() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := monitor.NewAnalytic(cfg)
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, cfg.Name)
		out.Curves = append(out.Curves, a.TraceBoundary(0, 1, n))
		out.Envelopes = append(out.Envelopes, nil)
	}
	return out, nil
}

// CSV renders the curves as "curve,x,y" rows.
func (f *Fig4) CSV() string {
	var b strings.Builder
	b.WriteString("curve,x,y\n")
	for i, pts := range f.Curves {
		for _, p := range pts {
			fmt.Fprintf(&b, "%s,%.6f,%.6f\n", f.Names[i], p.X, p.Y)
		}
	}
	return b.String()
}

// RunFig4Spice traces every Table I boundary from the transistor-level
// Fig. 2 netlist (binary search on the digitized output of MNA DC
// solves) — the software counterpart of the paper's bench measurement.
// Columns without a bit transition are skipped. It is a thin wrapper over
// the campaign registry ("fig4spice").
func RunFig4Spice(nCols int) (*Fig4, error) {
	return runAs[Fig4](legacyCtx(), Spec{
		Campaign: "fig4spice",
		Params:   Fig4SpiceParams{Cols: nCols},
	})
}

// runFig4Spice is the registry implementation behind RunFig4Spice.
func runFig4Spice(ctx context.Context, nCols int) (*Fig4, error) {
	out := &Fig4{}
	for _, cfg := range monitor.TableI() {
		sm, err := monitor.NewSpice(cfg, nil)
		if err != nil {
			return nil, err
		}
		var pts []monitor.Point
		for i := 0; i < nCols; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v := float64(i) / float64(nCols-1)
			if y, ok := sm.BoundaryY(v, 0, 1); ok {
				pts = append(pts, monitor.Point{X: v, Y: y})
			}
			if x, ok := sm.BoundaryX(v, 0, 1); ok {
				pts = append(pts, monitor.Point{X: x, Y: v})
			}
		}
		out.Names = append(out.Names, cfg.Name+"-spice")
		out.Curves = append(out.Curves, pts)
		out.Envelopes = append(out.Envelopes, nil)
	}
	return out, nil
}

// Fig8 is the NDF-vs-deviation acceptance curve.
type Fig8 struct {
	Devs      []float64
	NDFs      []float64
	Tolerance float64
	Threshold float64
}

// RunFig8 sweeps deviations over ±maxDev with the given number of points
// (odd counts include 0) and calibrates the PASS/FAIL threshold at the
// tolerance edges. It is a thin wrapper over the campaign registry
// ("fig8").
func RunFig8(sys *core.System, maxDev float64, points int, tol float64) (*Fig8, error) {
	return runAs[Fig8](legacyCtx(), Spec{
		Campaign: "fig8",
		Params:   Fig8Params{MaxDev: maxDev, Points: points, Tol: tol},
	}, WithSystem(sys))
}

// runFig8 is the registry implementation behind RunFig8.
func runFig8(ctx context.Context, sys *core.System, maxDev float64, points int, tol float64, eng campaign.Engine) (*Fig8, error) {
	if points < 3 {
		points = 3
	}
	devs := make([]float64, points)
	for i := range devs {
		devs[i] = -maxDev + 2*maxDev*float64(i)/float64(points-1)
	}
	ndfs, err := sys.SweepF0Ctx(ctx, devs, eng)
	if err != nil {
		return nil, err
	}
	dec, err := ndf.CalibrateThreshold(devs, ndfs, tol)
	if err != nil {
		return nil, err
	}
	return &Fig8{Devs: devs, NDFs: ndfs, Tolerance: tol, Threshold: dec.Threshold}, nil
}

// Render prints the sweep with PASS/FAIL bands, Fig. 8 style.
func (f *Fig8) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NDF vs f0 deviation (tolerance ±%.0f%%, threshold %.4f)\n",
		f.Tolerance*100, f.Threshold)
	b.WriteString("dev%    NDF      band\n")
	for i := range f.Devs {
		band := "PASS"
		if f.NDFs[i] > f.Threshold {
			band = "FAIL"
		}
		fmt.Fprintf(&b, "%+5.1f  %.4f   %s\n", f.Devs[i]*100, f.NDFs[i], band)
	}
	return b.String()
}

// CSV renders "dev,ndf,pass".
func (f *Fig8) CSV() string {
	var b strings.Builder
	b.WriteString("dev,ndf,pass\n")
	for i := range f.Devs {
		pass := 1
		if f.NDFs[i] > f.Threshold {
			pass = 0
		}
		fmt.Fprintf(&b, "%.4f,%.6f,%d\n", f.Devs[i], f.NDFs[i], pass)
	}
	return b.String()
}
