package testbench

import (
	"strings"
	"testing"

	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/stat"
)

func TestAblMetricNDFFinerThanEdit(t *testing.T) {
	a, err := RunAblMetric(sys(), []float64{-0.10, -0.05, -0.02, -0.005, 0.005, 0.02, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// NDF responds at every nonzero deviation.
	for i, d := range a.Devs {
		if d != 0 && a.NDFs[i] <= 0 {
			t.Fatalf("NDF blind at %v", d)
		}
	}
	nr, er := a.SmallestMoved()
	// The time-weighted metric must resolve deviations at least as small
	// as the sequence metric (it sees dwell warps the sequence misses).
	if nr > er {
		t.Fatalf("NDF resolution %v coarser than edit distance %v", nr, er)
	}
	if !strings.Contains(a.Render(), "metric ablation") {
		t.Fatal("render malformed")
	}
}

func TestAblMetricEditDistanceEventuallyMoves(t *testing.T) {
	a, err := RunAblMetric(sys(), []float64{0.20})
	if err != nil {
		t.Fatal(err)
	}
	if a.EditDist[0] <= 0 {
		t.Fatal("±20% deviation should change the traversal sequence")
	}
}

func TestStimOptImprovesOrKeepsSensitivity(t *testing.T) {
	s := sys()
	opt, err := RunStimOpt(s, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.BestNDF < opt.BaseNDF {
		t.Fatalf("optimizer regressed: %v -> %v", opt.BaseNDF, opt.BestNDF)
	}
	if opt.BaseNDF <= 0 {
		t.Fatal("base sensitivity zero")
	}
	if len(opt.BestPhases) != 3 {
		t.Fatalf("phases = %v", opt.BestPhases)
	}
	if !strings.Contains(opt.Render(), "optimization") {
		t.Fatal("render malformed")
	}
}

func TestNoiseDistributionsStatisticallyDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("long Monte-Carlo campaign, skipped under -short")
	}
	// KS test: under the paper's noise, the null and 2%-deviation NDF
	// distributions are significantly different.
	s := sys()
	src := rng.New(31)
	sample := func(shift float64, base uint64) []float64 {
		cut, err := s.Shifted(shift)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 16)
		for i := range out {
			v, err := s.AveragedNDF(cut, 0.005, src.Split(base+uint64(i)), 3)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	null := sample(0, 0)
	dev := sample(0.02, 1000)
	d := stat.KolmogorovSmirnov(null, dev)
	if !stat.KSSignificant(d, len(null), len(dev), 0.05) {
		t.Fatalf("null and 2%% distributions not distinct (D=%v)", d)
	}
	// Two independent null samples are not significantly different.
	null2 := sample(0, 2000)
	d0 := stat.KolmogorovSmirnov(null, null2)
	if stat.KSSignificant(d0, len(null), len(null2), 0.01) {
		t.Fatalf("two null samples flagged distinct (D=%v)", d0)
	}
	// The ROC of null vs 2%-deviation is nearly a perfect separator.
	curve, err := ndf.ROC(null, dev)
	if err != nil {
		t.Fatal(err)
	}
	if auc := ndf.AUC(curve); auc < 0.95 {
		t.Fatalf("AUC = %v, want near-perfect separation at 2%%", auc)
	}
}
