package testbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// campaignDef is one registry entry: the campaign's identity, its typed
// params/payload constructors, and the untyped executor the generic
// register function adapts.
type campaignDef struct {
	name       string
	summary    string
	newParams  func() any // pointer to a default-filled params struct
	newPayload func() any // pointer to a zero payload struct
	run        func(ctx context.Context, ev *Env, params any) (any, error)
}

// registry maps campaign name to definition. It is populated exclusively
// from init (campaigns.go) and read-only afterwards, so it needs no lock.
var registry = map[string]*campaignDef{}

// register adds a campaign under a unique name. P is the params struct
// (defaults taken from the given value), R the payload struct.
func register[P, R any](name, summary string, defaults P, run func(ctx context.Context, ev *Env, p *P) (*R, error)) {
	if _, dup := registry[name]; dup {
		panic("testbench: duplicate campaign " + name)
	}
	registry[name] = &campaignDef{
		name:    name,
		summary: summary,
		newParams: func() any {
			p := defaults
			return &p
		},
		newPayload: func() any { return new(R) },
		run: func(ctx context.Context, ev *Env, params any) (any, error) {
			return run(ctx, ev, params.(*P))
		},
	}
}

// lookup resolves a campaign name, listing the known names on failure.
func lookup(name string) (*campaignDef, error) {
	def, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("testbench: unknown campaign %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return def, nil
}

// Names returns the registered campaign names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParamField describes one campaign parameter: its JSON name, its Go
// type, and the default the registry fills in when a spec omits it.
type ParamField struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Default any    `json:"default"`
}

// Info is the machine-readable description of one campaign — what
// `mcmon -list` prints and `mcserved GET /v1/campaigns` serves. It is
// derived from the registered params struct by reflection, so flag help
// and HTTP discovery can never drift from the code.
type Info struct {
	Name    string       `json:"name"`
	Summary string       `json:"summary"`
	Params  []ParamField `json:"params"`
}

// List enumerates every registered campaign with its param schema and
// defaults, sorted by name.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Names() {
		def := registry[name]
		out = append(out, Info{
			Name:    name,
			Summary: def.summary,
			Params:  paramFields(def.newParams()),
		})
	}
	return out
}

// paramFields reflects a params struct pointer into its schema rows.
func paramFields(p any) []ParamField {
	v := reflect.ValueOf(p).Elem()
	t := v.Type()
	var out []ParamField
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if name == "-" {
			continue
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		// Pointer fields are optional knobs; render "*T" as "T?" so the
		// schema reads naturally in -list output and HTTP discovery.
		typ := f.Type.String()
		if f.Type.Kind() == reflect.Ptr {
			typ = f.Type.Elem().String() + "?"
		}
		out = append(out, ParamField{
			Name:    name,
			Type:    typ,
			Default: v.Field(i).Interface(),
		})
	}
	return out
}

// decodeParams fills the typed params struct (already holding defaults)
// from whatever form the spec carries: nil keeps the defaults, raw JSON
// and JSON-shaped values (maps from a decoded HTTP body) unmarshal over
// them, and an already-typed struct or pointer is copied directly.
func decodeParams(src any, into any) error {
	if src == nil {
		return nil
	}
	switch v := src.(type) {
	case json.RawMessage:
		return unmarshalParams(v, into)
	case []byte:
		return unmarshalParams(v, into)
	}
	dst := reflect.ValueOf(into)
	sv := reflect.ValueOf(src)
	if sv.Type() == dst.Type() { // *P
		dst.Elem().Set(sv.Elem())
		return nil
	}
	if sv.Type() == dst.Type().Elem() { // P
		dst.Elem().Set(sv)
		return nil
	}
	// JSON-shaped value (e.g. map[string]any): round-trip through JSON.
	data, err := json.Marshal(src)
	if err != nil {
		return err
	}
	return unmarshalParams(data, into)
}

// unmarshalParams unmarshals strictly: unknown fields are an error, so a
// typo'd spec fails loudly instead of silently running the defaults.
func unmarshalParams(data []byte, into any) error {
	if len(data) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// MaxTrials bounds every campaign's trial-count knobs. The streaming
// reduction engine keeps memory flat well past this, but a run above it
// is virtually always a typo'd spec, and the bound keeps a single HTTP
// submission from pinning a server for days. 10M-trial production specs
// — the scale the paper's yield and coverage statistics sharpen at —
// validate cleanly.
const MaxTrials = 100_000_000

// paramsValidator is implemented by params structs that constrain their
// values beyond what the JSON schema can express (trial-count bounds,
// positive sigmas). Validate and Run both consult it after decoding.
type paramsValidator interface{ Validate() error }

// validateParams runs the params struct's own semantic validation when
// it declares one.
func validateParams(campaign string, params any) error {
	v, ok := params.(paramsValidator)
	if !ok {
		return nil
	}
	if err := v.Validate(); err != nil {
		return fmt.Errorf("testbench: campaign %s: bad params: %w", campaign, err)
	}
	return nil
}

// Validate checks a spec against the registry — the campaign exists, the
// backend name is known, the spec knobs are in range, and the params
// decode into the campaign's schema (and pass its semantic validation)
// — without running anything. The HTTP service gates submissions on it.
func Validate(spec Spec) error {
	def, err := lookup(spec.Campaign)
	if err != nil {
		return err
	}
	if spec.Backend != "" {
		known := false
		for _, b := range core.Backends() {
			if spec.Backend == b {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("testbench: campaign %s: unknown backend %q (want %s)",
				spec.Campaign, spec.Backend, strings.Join(core.Backends(), " or "))
		}
	}
	if spec.Chunk < 0 {
		return fmt.Errorf("testbench: campaign %s: negative chunk %d", spec.Campaign, spec.Chunk)
	}
	if spec.Checkpoint < 0 {
		return fmt.Errorf("testbench: campaign %s: negative checkpoint %d", spec.Campaign, spec.Checkpoint)
	}
	params := def.newParams()
	if err := decodeParams(spec.Params, params); err != nil {
		return fmt.Errorf("testbench: campaign %s: bad params: %w", spec.Campaign, err)
	}
	return validateParams(spec.Campaign, params)
}

// DecodeResult restores a Result from its JSON encoding, rebuilding the
// typed payload and params through the registry — the receiving half of
// the envelope's round-trip contract.
func DecodeResult(data []byte) (*Result, error) {
	var raw struct {
		Spec    json.RawMessage `json:"spec"`
		Payload json.RawMessage `json:"payload"`
		Text    string          `json:"text"`
		Elapsed time.Duration   `json:"elapsed_ns"`
		Workers int             `json:"workers"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("testbench: decode result: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(raw.Spec, &spec); err != nil {
		return nil, fmt.Errorf("testbench: decode result spec: %w", err)
	}
	def, err := lookup(spec.Campaign)
	if err != nil {
		return nil, err
	}
	params := def.newParams()
	if err := decodeParams(spec.Params, params); err != nil {
		return nil, fmt.Errorf("testbench: decode result params: %w", err)
	}
	spec.Params = params
	res := &Result{Spec: spec, Text: raw.Text, Elapsed: raw.Elapsed, Workers: raw.Workers}
	if len(raw.Payload) > 0 && string(raw.Payload) != "null" {
		payload := def.newPayload()
		if err := json.Unmarshal(raw.Payload, payload); err != nil {
			return nil, fmt.Errorf("testbench: decode result payload: %w", err)
		}
		res.Payload = payload
	}
	return res, nil
}
