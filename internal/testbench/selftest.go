package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ndf"
)

// SelfTest is the monitor-BIST experiment: inject stuck-at faults into
// each of the six monitor outputs and measure the NDF a *golden* CUT
// produces through the broken bank. A healthy deployment reads ~0; a
// stuck monitor shows up as a large spurious discrepancy, so the same
// golden-signature comparison that screens CUTs also screens the test
// hardware itself.
type SelfTest struct {
	// NDFs[mi][v] is the golden-CUT NDF with monitor mi stuck at v.
	NDFs      [][2]float64
	Detected  int // faults with NDF above threshold
	Total     int
	Threshold float64
}

// RunSelfTest evaluates all stuck-at faults against the decision. It is
// a thin wrapper over the campaign registry ("selftest").
func RunSelfTest(sys *core.System, dec ndf.Decision) (*SelfTest, error) {
	return runAs[SelfTest](legacyCtx(), Spec{
		Campaign: "selftest",
		Params:   SelfTestParams{Threshold: &dec.Threshold},
	}, WithSystem(sys))
}

// runSelfTest is the registry implementation behind RunSelfTest.
func runSelfTest(ctx context.Context, sys *core.System, dec ndf.Decision) (*SelfTest, error) {
	golden, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	out := &SelfTest{Threshold: dec.Threshold}
	for mi := 0; mi < sys.Bank.Size(); mi++ {
		var pair [2]float64
		for v := 0; v <= 1; v++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			bank, err := sys.Bank.WithStuckMonitor(mi, v)
			if err != nil {
				return nil, err
			}
			broken, err := core.NewSystem(sys.Stimulus, sys.CUT, bank, sys.Capture)
			if err != nil {
				return nil, err
			}
			broken.Observe = sys.Observe
			obs, err := broken.ExactSignature(sys.CUT)
			if err != nil {
				return nil, err
			}
			val, err := ndf.NDF(obs, golden)
			if err != nil {
				return nil, err
			}
			pair[v] = val
			out.Total++
			if !dec.Pass(val) {
				out.Detected++
			}
		}
		out.NDFs = append(out.NDFs, pair)
	}
	return out, nil
}

// Coverage returns the detected fraction of stuck-at faults.
func (s *SelfTest) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Total)
}

// Render prints the per-monitor table.
func (s *SelfTest) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "monitor self-test: golden-CUT NDF with stuck outputs (threshold %.4f)\n", s.Threshold)
	b.WriteString("monitor  stuck@0   stuck@1\n")
	for i, pair := range s.NDFs {
		fmt.Fprintf(&b, "%-8d %.4f    %.4f\n", i+1, pair[0], pair[1])
	}
	fmt.Fprintf(&b, "detected %d/%d stuck-at faults (%.0f%%)\n", s.Detected, s.Total, 100*s.Coverage())
	return b.String()
}
