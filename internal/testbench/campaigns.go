package testbench

import (
	"context"
	"fmt"

	"repro/internal/biquad"
	"repro/internal/ndf"
	"repro/internal/stat"
)

// This file is the campaign registry's catalogue: every experiment driver
// of the package registered under a stable name with a typed,
// JSON-serializable params struct. The registry is the single campaign
// surface — the legacy Run* entry points, the CLI flags (mcmon -list,
// xyzone -ext/-abl), and the mcserved HTTP service all resolve through
// it, so adding a campaign here makes it scriptable, servable and
// discoverable at once.
//
// Params structs carry their defaults as field values; a spec overrides
// only the fields it names. Common knobs (backend, seed, workers, scalar
// engine) live on the Spec itself, not in params.

// Fig1Params configures the "fig1" campaign.
type Fig1Params struct {
	Shift  float64 `json:"shift"`
	Points int     `json:"points"`
}

// Fig4Params configures the "fig4" campaign.
type Fig4Params struct {
	Points int `json:"points"`
}

// Fig4SpiceParams configures the "fig4spice" campaign.
type Fig4SpiceParams struct {
	Cols int `json:"cols"`
}

// Fig4MCParams configures the "fig4mc" campaign. Monitor is the 0-based
// Table I index.
type Fig4MCParams struct {
	Monitor int `json:"monitor"`
	Dies    int `json:"dies"`
	Cols    int `json:"cols"`
}

// Validate bounds the die count.
func (p *Fig4MCParams) Validate() error {
	return validateTrials("dies", p.Dies)
}

// Fig6Params configures the "fig6" campaign.
type Fig6Params struct {
	Shift float64 `json:"shift"`
	Grid  int     `json:"grid"`
}

// Fig7Params configures the "fig7" campaign.
type Fig7Params struct {
	Shift  float64 `json:"shift"`
	Points int     `json:"points"`
}

// Fig8Params configures the "fig8" campaign.
type Fig8Params struct {
	MaxDev float64 `json:"max_dev"`
	Points int     `json:"points"`
	Tol    float64 `json:"tol"`
}

// NoiseParams configures the "noise" campaign. SketchPrec is the
// quantile-sketch precision used when NullTrials exceeds
// testbench.ExactNullCutoff and the null calibration streams (0 picks
// stat.DefaultSketchPrecision); below the cutoff it is unused.
type NoiseParams struct {
	Sigma      float64   `json:"sigma"`
	Devs       []float64 `json:"devs"`
	NullTrials int       `json:"null_trials"`
	Trials     int       `json:"trials"`
	SketchPrec int       `json:"sketch_prec,omitempty"`
}

// Validate bounds the noise campaign's trial knobs.
func (p *NoiseParams) Validate() error {
	if err := validateTrials("trials", p.Trials); err != nil {
		return err
	}
	if err := validateTrials("null_trials", p.NullTrials); err != nil {
		return err
	}
	if p.Sigma < 0 {
		return fmt.Errorf("negative sigma %v", p.Sigma)
	}
	return validateSketchPrec(p.SketchPrec)
}

// NoiseSweepParams configures the "noisesweep" campaign. SketchPrec is
// as in NoiseParams, applied to each per-sigma null calibration.
type NoiseSweepParams struct {
	Sigmas     []float64 `json:"sigmas"`
	DevGrid    []float64 `json:"dev_grid"`
	Trials     int       `json:"trials"`
	SketchPrec int       `json:"sketch_prec,omitempty"`
}

// Validate bounds the sweep's per-point trial count.
func (p *NoiseSweepParams) Validate() error {
	if err := validateTrials("trials", p.Trials); err != nil {
		return err
	}
	return validateSketchPrec(p.SketchPrec)
}

// validateSketchPrec is the shared sketch-precision bound: 0 (use the
// default) or a valid stat.NewQuantileSketch precision.
func validateSketchPrec(prec int) error {
	if prec != 0 && (prec < stat.MinSketchPrecision || prec > stat.MaxSketchPrecision) {
		return fmt.Errorf("sketch_prec = %d, want 0 (default) or %d..%d",
			prec, stat.MinSketchPrecision, stat.MaxSketchPrecision)
	}
	return nil
}

// FaultsParams configures the "faults" campaign. A nil Threshold
// calibrates one from Tol first (Fig. 8 band construction); an empty
// fault list runs DefaultFaultSet.
type FaultsParams struct {
	Threshold *float64       `json:"threshold,omitempty"`
	Tol       float64        `json:"tol"`
	Faults    []biquad.Fault `json:"faults,omitempty"`
}

// YieldParams configures the "yield" campaign. A nil Threshold
// calibrates one at the multi-parameter spec corners first. N is the
// die count — the streaming reduction keeps memory flat, so production
// runs of 10M+ dies validate and execute with O(workers) heap.
type YieldParams struct {
	N              int      `json:"n"`
	ComponentSigma float64  `json:"component_sigma"`
	Tol            float64  `json:"tol"`
	Threshold      *float64 `json:"threshold,omitempty"`
}

// Validate bounds the die count to (0, MaxTrials].
func (p *YieldParams) Validate() error {
	return validateTrials("n", p.N)
}

// validateTrials is the shared trial-count bound: positive, at most
// MaxTrials.
func validateTrials(name string, n int) error {
	if n < 1 {
		return fmt.Errorf("%s = %d, need at least 1 trial", name, n)
	}
	if n > MaxTrials {
		return fmt.Errorf("%s = %d exceeds the %d-trial bound", name, n, MaxTrials)
	}
	return nil
}

// SelfTestParams configures the "selftest" campaign. A nil Threshold
// calibrates one from Tol first.
type SelfTestParams struct {
	Threshold *float64 `json:"threshold,omitempty"`
	Tol       float64  `json:"tol"`
}

// TempParams configures the "temp" campaign.
type TempParams struct {
	TempsK []float64 `json:"temps_k"`
}

// SpectralParams configures the "spectral" campaign.
type SpectralParams struct {
	TrainDevs []float64 `json:"train_devs"`
	TestDevs  []float64 `json:"test_devs"`
}

// RegressParams configures the "regress" campaign.
type RegressParams struct {
	TrainDevs []float64 `json:"train_devs"`
	TestDevs  []float64 `json:"test_devs"`
}

// MetricParams configures the "metric" campaign.
type MetricParams struct {
	Devs []float64 `json:"devs"`
}

// CounterParams configures the "counter" campaign.
type CounterParams struct {
	Shift  float64   `json:"shift"`
	Bits   []int     `json:"bits"`
	Clocks []float64 `json:"clocks"`
}

// LinearParams configures the "linear" campaign.
type LinearParams struct {
	Devs []float64 `json:"devs"`
}

// QParams configures the "q" campaign.
type QParams struct {
	Devs []float64 `json:"devs"`
}

// StimOptParams configures the "stimopt" campaign.
type StimOptParams struct {
	Shift float64 `json:"shift"`
	Grid  int     `json:"grid"`
}

// BackendsParams configures the "backends" campaign.
type BackendsParams struct {
	Shifts []float64 `json:"shifts"`
}

// Table1Params configures the "table1" campaign (no knobs).
type Table1Params struct{}

// CornersParams configures the "corners" campaign (no knobs).
type CornersParams struct{}

// decision resolves the acceptance threshold shared by the fault-shaped
// campaigns: an explicit threshold wins (even zero — "everything moves
// fails"); otherwise a Fig. 8 tolerance calibration runs on the
// campaign's engine.
func decision(ctx context.Context, ev *Env, threshold *float64, tol float64) (ndf.Decision, error) {
	if threshold != nil {
		return ndf.Decision{Threshold: *threshold}, nil
	}
	sys, err := ev.System()
	if err != nil {
		return ndf.Decision{}, err
	}
	return sys.CalibrateFromToleranceCtx(ctx, tol, 9, ev.Engine())
}

func init() {
	register("fig1", "Lissajous traces of the golden and f0-shifted CUT (Fig. 1)",
		Fig1Params{Shift: 0.10, Points: 512},
		func(ctx context.Context, ev *Env, p *Fig1Params) (*Fig1, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runFig1(sys, p.Shift, p.Points)
		})

	register("table1", "the six published monitor input configurations (Table I)",
		Table1Params{},
		func(ctx context.Context, ev *Env, p *Table1Params) (*Table1, error) {
			return RunTable1(), nil
		})

	register("fig4", "Table I boundary control curves from the analytic monitor model (Fig. 4)",
		Fig4Params{Points: 41},
		func(ctx context.Context, ev *Env, p *Fig4Params) (*Fig4, error) {
			return runFig4(ctx, p.Points)
		})

	register("fig4spice", "Table I boundaries re-traced at transistor level by the MNA solver (Fig. 4 cross-check)",
		Fig4SpiceParams{Cols: 21},
		func(ctx context.Context, ev *Env, p *Fig4SpiceParams) (*Fig4, error) {
			return runFig4Spice(ctx, p.Cols)
		})

	register("fig4mc", "Monte-Carlo process/mismatch envelope of one Table I boundary (Fig. 4 MC validation)",
		Fig4MCParams{Monitor: 2, Dies: 200, Cols: 21},
		func(ctx context.Context, ev *Env, p *Fig4MCParams) (*Fig4MC, error) {
			return runFig4MC(ctx, p.Monitor, p.Dies, p.Cols, ev.Seed(), ev.Engine())
		})

	register("fig6", "zone codification map and golden/deviated traversal sequences (Fig. 6)",
		Fig6Params{Shift: 0.10, Grid: 101},
		func(ctx context.Context, ev *Env, p *Fig6Params) (*Fig6, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runFig6(sys, p.Shift, p.Grid)
		})

	register("fig7", "decimal-coded signature chronograms, Hamming trace and NDF (Fig. 7)",
		Fig7Params{Shift: 0.10, Points: 400},
		func(ctx context.Context, ev *Env, p *Fig7Params) (*Fig7, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runFig7(sys, p.Shift, p.Points)
		})

	register("fig8", "NDF vs f0 deviation sweep with PASS/FAIL calibration (Fig. 8)",
		Fig8Params{MaxDev: 0.20, Points: 17, Tol: 0.05},
		func(ctx context.Context, ev *Env, p *Fig8Params) (*Fig8, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runFig8(ctx, sys, p.MaxDev, p.Points, p.Tol, ev.Engine())
		})

	register("noise", "noisy detection-rate experiment behind the paper's 1% claim",
		NoiseParams{Sigma: 0.005, Devs: []float64{0.005, 0.01, 0.02, 0.05}, NullTrials: 20, Trials: 20},
		func(ctx context.Context, ev *Env, p *NoiseParams) (*Noise, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runNoiseDetection(ctx, sys, p.Sigma, p.Devs, p.NullTrials, p.Trials, p.SketchPrec, ev.Seed(), ev.Engine())
		})

	register("noisesweep", "minimum detectable deviation as a function of noise sigma",
		NoiseSweepParams{Sigmas: []float64{0.002, 0.005, 0.01, 0.02}, DevGrid: []float64{0.005, 0.01, 0.02, 0.05, 0.10}, Trials: 10},
		func(ctx context.Context, ev *Env, p *NoiseSweepParams) (*NoiseSweep, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runNoiseSweep(ctx, sys, p.Sigmas, p.DevGrid, p.Trials, p.SketchPrec, ev.Seed(), ev.Engine())
		})

	register("faults", "component-level fault campaign (parametric drifts, opens, shorts)",
		FaultsParams{Tol: 0.05},
		func(ctx context.Context, ev *Env, p *FaultsParams) (*FaultTable, error) {
			dec, err := decision(ctx, ev, p.Threshold, p.Tol)
			if err != nil {
				return nil, err
			}
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			faults := p.Faults
			if len(faults) == 0 {
				faults = DefaultFaultSet()
			}
			return runFaultTable(ctx, sys, dec, faults, ev.Engine())
		})

	register("yield", "production-flow yield/escape/overkill simulation over component tolerances",
		YieldParams{N: 400, ComponentSigma: 0.02, Tol: 0.05},
		func(ctx context.Context, ev *Env, p *YieldParams) (*Yield, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			var dec ndf.Decision
			if p.Threshold != nil {
				dec.Threshold = *p.Threshold
			} else if dec, err = calibrateMultiParam(ctx, sys, p.Tol); err != nil {
				return nil, err
			}
			return runYield(ctx, sys, dec, p.N, p.ComponentSigma, p.Tol, ev.Engine())
		})

	register("selftest", "monitor-BIST stuck-at campaign: the bank screens itself",
		SelfTestParams{Tol: 0.05},
		func(ctx context.Context, ev *Env, p *SelfTestParams) (*SelfTest, error) {
			dec, err := decision(ctx, ev, p.Threshold, p.Tol)
			if err != nil {
				return nil, err
			}
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runSelfTest(ctx, sys, dec)
		})

	register("corners", "spurious golden-CUT NDF at the five foundry sign-off corners",
		CornersParams{},
		func(ctx context.Context, ev *Env, p *CornersParams) (*CornerDrift, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runCornerDrift(ctx, sys)
		})

	register("temp", "spurious golden-CUT NDF vs monitor junction temperature",
		TempParams{TempsK: []float64{233, 273, 300, 323, 358, 398}},
		func(ctx context.Context, ev *Env, p *TempParams) (*TempDrift, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runTempDrift(ctx, sys, p.TempsK)
		})

	register("spectral", "alternate-test features: signature dwell vs Goertzel spectral regression",
		SpectralParams{TrainDevs: defaultTrainDevs(), TestDevs: defaultTestDevs()},
		func(ctx context.Context, ev *Env, p *SpectralParams) (*AblSpectral, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runAblSpectral(ctx, sys, p.TrainDevs, p.TestDevs)
		})

	register("regress", "alternate-test regression of f0 deviation from dwell features",
		RegressParams{TrainDevs: defaultTrainDevs(), TestDevs: defaultTestDevs()},
		func(ctx context.Context, ev *Env, p *RegressParams) (*AblRegression, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runAblRegression(ctx, sys, p.TrainDevs, p.TestDevs)
		})

	register("metric", "metric ablation: time-weighted NDF vs sequence edit distance",
		MetricParams{Devs: []float64{-0.10, -0.05, -0.02, -0.005, 0.005, 0.02, 0.05, 0.10}},
		func(ctx context.Context, ev *Env, p *MetricParams) (*AblMetric, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runAblMetric(ctx, sys, p.Devs)
		})

	register("counter", "capture quantization ablation across counter widths and clock rates",
		CounterParams{Shift: 0.10, Bits: []int{8, 12, 16}, Clocks: []float64{1e6, 10e6, 100e6}},
		func(ctx context.Context, ev *Env, p *CounterParams) (*AblCounter, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runAblCounter(ctx, sys, p.Shift, p.Bits, p.Clocks)
		})

	register("linear", "zoning ablation: nonlinear Table I bank vs straight-line baseline",
		LinearParams{Devs: []float64{-0.15, -0.10, -0.05, -0.02, 0.02, 0.05, 0.10, 0.15}},
		func(ctx context.Context, ev *Env, p *LinearParams) (*AblLinear, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runAblLinear(ctx, sys, p.Devs, ev.Engine())
		})

	register("q", "Q-verification extension: NDF vs Q deviation, LP- and BP-observed",
		QParams{Devs: []float64{-0.40, -0.20, -0.10, 0.10, 0.20, 0.40}},
		func(ctx context.Context, ev *Env, p *QParams) (*ExtQ, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runExtQ(ctx, sys, p.Devs)
		})

	register("stimopt", "stimulus phase optimization maximizing NDF response",
		StimOptParams{Shift: 0.05, Grid: 6},
		func(ctx context.Context, ev *Env, p *StimOptParams) (*StimOpt, error) {
			sys, err := ev.System()
			if err != nil {
				return nil, err
			}
			return runStimOpt(ctx, sys, p.Shift, p.Grid)
		})

	register("backends", "SPICE-vs-analytic cross-validation sweep (builds both systems itself)",
		BackendsParams{Shifts: []float64{-0.10, -0.05, 0.05, 0.10}},
		func(ctx context.Context, ev *Env, p *BackendsParams) (*BackendAgreement, error) {
			return runBackendAgreement(ctx, p.Shifts, ev.Engine())
		})
}

// defaultTrainDevs is the regression campaigns' shared training grid.
func defaultTrainDevs() []float64 {
	return []float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20}
}

// defaultTestDevs is the regression campaigns' shared held-out grid.
func defaultTestDevs() []float64 {
	return []float64{-0.12, -0.04, 0.07, 0.12}
}
