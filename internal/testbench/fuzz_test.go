package testbench

import (
	"bytes"
	"testing"

	"repro/internal/biquad"
	"repro/internal/ndf"
)

// FuzzShardBlobUnmarshal throws arbitrary bytes at every shard
// accumulator codec the fabric trusts across process and machine
// boundaries. Each codec must reject what it cannot prove well-formed
// and, for anything it accepts, reach a canonical fixed point in one
// round: Unmarshal → Marshal → Unmarshal reproduces the accumulator,
// and the second Marshal reproduces the first's bytes. Without that, a
// resumed or sharded campaign could silently drift from its checkpoint.
func FuzzShardBlobUnmarshal(f *testing.F) {
	yr := yieldReducer()
	yieldSeed, err := yr.Marshal(yieldCounts{trueGood: 220, pass: 230, escapes: 17, overkill: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(yieldSeed)
	fr := faultReducer()
	faultSeed, err := fr.Marshal([]FaultCase{{Fault: biquad.Fault{Frac: 0.5}, NDF: 0.42, Detected: true}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(faultSeed)
	dr := detectReducer(ndf.Decision{})
	detectSeed, err := dr.Marshal(123)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(detectSeed)
	f.Add([]byte("MCY1"))
	f.Add([]byte("MCF1[]"))
	f.Add([]byte("MCD1\x00"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if counts, err := yr.Unmarshal(data); err == nil {
			blob, err := yr.Marshal(counts)
			if err != nil {
				t.Fatalf("yield: accepted counts failed to re-marshal: %v", err)
			}
			again, err := yr.Unmarshal(blob)
			if err != nil || again != counts {
				t.Fatalf("yield: round trip %+v -> %+v (%v)", counts, again, err)
			}
			if !bytes.Equal(blob, data) {
				t.Fatalf("yield: accepted non-canonical encoding (%d bytes -> %d)", len(data), len(blob))
			}
		}
		if cases, err := fr.Unmarshal(data); err == nil {
			blob, err := fr.Marshal(cases)
			if err != nil {
				t.Fatalf("faults: accepted cases failed to re-marshal: %v", err)
			}
			again, err := fr.Unmarshal(blob)
			if err != nil {
				t.Fatalf("faults: canonical form rejected: %v", err)
			}
			blob2, err := fr.Marshal(again)
			if err != nil {
				t.Fatalf("faults: second re-marshal: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("faults: no canonical fixed point after one round")
			}
		}
		if n, err := dr.Unmarshal(data); err == nil {
			blob, err := dr.Marshal(n)
			if err != nil {
				t.Fatalf("detect: accepted count failed to re-marshal: %v", err)
			}
			again, err := dr.Unmarshal(blob)
			if err != nil || again != n {
				t.Fatalf("detect: round trip %d -> %d (%v)", n, again, err)
			}
			if !bytes.Equal(blob, data) {
				t.Fatalf("detect: accepted non-canonical encoding (%d bytes -> %d)", len(data), len(blob))
			}
		}
	})
}
