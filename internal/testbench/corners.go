package testbench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/ndf"
)

// CornerDrift is the process-corner companion of TempDrift: the monitor
// bank is moved to each foundry sign-off corner while the golden
// signature stays characterized at TT, and the spurious NDF of a golden
// CUT measures how much boundary motion each corner causes. (Monitor
// input devices are all nMOS, so SF equals SS and FS equals FF for the
// zone boundaries; the full five-corner table documents that.)
type CornerDrift struct {
	Corners []mos.Corner
	NDFs    []float64
}

// RunCornerDrift evaluates all five corners. It is a thin wrapper over
// the campaign registry ("corners").
func RunCornerDrift(sys *core.System) (*CornerDrift, error) {
	return runAs[CornerDrift](legacyCtx(), Spec{Campaign: "corners"}, WithSystem(sys))
}

// runCornerDrift is the registry implementation behind RunCornerDrift.
func runCornerDrift(ctx context.Context, sys *core.System) (*CornerDrift, error) {
	golden, err := sys.GoldenSignature()
	if err != nil {
		return nil, err
	}
	out := &CornerDrift{}
	for _, c := range mos.Corners() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bank, err := bankAtCorner(c)
		if err != nil {
			return nil, err
		}
		cSys, err := core.NewSystem(sys.Stimulus, sys.CUT, bank, sys.Capture)
		if err != nil {
			return nil, err
		}
		cSys.Observe = sys.Observe
		// One exact scan on a throwaway bank: the zone-LUT build would
		// cost more than it amortizes, so keep the scalar classifier
		// (results are bit-identical either way).
		cSys.Scalar = true
		obs, err := cSys.ExactSignature(sys.CUT)
		if err != nil {
			return nil, err
		}
		v, err := ndf.NDF(obs, golden)
		if err != nil {
			return nil, err
		}
		out.Corners = append(out.Corners, c)
		out.NDFs = append(out.NDFs, v)
	}
	return out, nil
}

func bankAtCorner(c mos.Corner) (*monitor.Bank, error) {
	cfgs := monitor.TableI()
	ms := make([]monitor.Monitor, len(cfgs))
	for i, cfg := range cfgs {
		a, err := monitor.NewAnalytic(cfg)
		if err != nil {
			return nil, err
		}
		devs := a.Devices()
		for j := range devs {
			devs[j].P = devs[j].P.AtCorner(c)
		}
		ms[i] = a.WithDevices(devs)
	}
	return monitor.NewBank(ms...), nil
}

// Render prints the corner table.
func (cd *CornerDrift) Render() string {
	var b strings.Builder
	b.WriteString("process-corner drift (golden CUT, golden characterized at TT)\n")
	b.WriteString("corner  spurious NDF\n")
	for i := range cd.Corners {
		fmt.Fprintf(&b, "%-6s  %.4f\n", cd.Corners[i], cd.NDFs[i])
	}
	return b.String()
}
