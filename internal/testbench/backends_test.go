package testbench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/biquad"
	"repro/internal/core"
)

// TestBackendAgreement is the campaign-level cross-validation: the full
// test path must produce nearly identical NDF curves on the analytic and
// SPICE backends, and the golden output waveforms must coincide within
// the transient integrator's accuracy budget.
func TestBackendAgreement(t *testing.T) {
	ba, err := RunBackendAgreement([]float64{-0.10, -0.05, 0, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if ba.MaxWaveDelta > 2e-3 {
		t.Fatalf("golden waveform discrepancy %v V", ba.MaxWaveDelta)
	}
	if gap := ba.MaxNDFGap(); gap > 5e-3 {
		t.Fatalf("NDF gap between backends = %v", gap)
	}
	// The golden CUT must read exactly zero on both backends (each is
	// compared against its own golden signature).
	for i, s := range ba.Shifts {
		if s == 0 && (ba.AnalyticNDF[i] != 0 || ba.SpiceNDF[i] != 0) {
			t.Fatalf("golden NDF nonzero: analytic %v, spice %v",
				ba.AnalyticNDF[i], ba.SpiceNDF[i])
		}
	}
	if !strings.Contains(ba.Render(), "backend agreement") {
		t.Fatal("render malformed")
	}
}

// TestFaultTableOnSpiceBackend runs the (reduced) component fault
// campaign end to end on the SPICE netlist engine — the cmd/mcmon
// -backend=spice path — and checks the catastrophic faults are caught.
func TestFaultTableOnSpiceBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE fault campaign skipped under -short")
	}
	sys, err := core.DefaultSpice()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Threshold <= 0 {
		t.Fatalf("SPICE-calibrated threshold = %v", dec.Threshold)
	}
	tab, err := RunFaultTable(sys, dec, DefaultFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cases) != 16 {
		t.Fatalf("cases = %d", len(tab.Cases))
	}
	for _, c := range tab.Cases {
		if c.Fault.Kind != biquad.FaultParametric && !c.Detected {
			t.Fatalf("catastrophic fault %s escaped on the SPICE backend (NDF %v)", c.Fault, c.NDF)
		}
	}
	if cov := tab.Coverage(); cov < 0.7 {
		t.Fatalf("SPICE-backend coverage = %v, implausibly low", cov)
	}
}

// TestSpiceBackendDeterministicAcrossWorkers extends the campaign
// engine's bit-reproducibility contract to the SPICE backend: the fault
// table (whose trials share the workspace pool in arbitrary worker
// order) must render byte-identical at any worker count.
func TestSpiceBackendDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE determinism campaign skipped under -short")
	}
	thr := 0.02
	run := func(workers int) string {
		sys, err := core.DefaultSpice()
		if err != nil {
			t.Fatal(err)
		}
		// A fixed threshold keeps the test on the campaign itself, not
		// the calibration sweep.
		tab, err := runAs[FaultTable](context.Background(), Spec{
			Campaign: "faults",
			Workers:  workers,
			Params:   FaultsParams{Threshold: &thr},
		}, WithSystem(sys))
		if err != nil {
			t.Fatal(err)
		}
		return tab.Render()
	}
	ref := run(1)
	for _, w := range workerCounts()[1:] {
		if got := run(w); got != ref {
			t.Fatalf("workers=%d: SPICE fault table differs from workers=1:\n%s\nvs\n%s", w, got, ref)
		}
	}
}
