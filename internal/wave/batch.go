package wave

// BatchEvaluator is the optional batch fast path of Waveform: fill
// out[i] = Eval(ts[i]) for every sample in one call. Implementations
// must be bit-identical to calling Eval point by point — the batched
// signature engine relies on that equivalence for its bit-exactness
// guarantee — so they reuse the scalar arithmetic and only hoist the
// per-sample interface dispatch out of the loop.
//
// Stateful waveforms (Noisy, whose every Eval draws a random variate)
// deliberately do not implement BatchEvaluator; the EvalInto fallback
// preserves their draw order exactly.
type BatchEvaluator interface {
	// EvalBatch fills out[i] = Eval(ts[i]); len(out) == len(ts).
	EvalBatch(ts, out []float64)
}

// EvalInto samples w at the given times into out, using the waveform's
// EvalBatch when available and a scalar loop otherwise. The results are
// bit-identical to calling w.Eval(ts[i]) for each i in order. It panics
// when the buffer lengths differ.
//
//mclint:hotpath
func EvalInto(w Waveform, ts, out []float64) {
	if len(ts) != len(out) {
		panic("wave: EvalInto needs len(ts) == len(out)")
	}
	if b, ok := w.(BatchEvaluator); ok {
		b.EvalBatch(ts, out)
		return
	}
	for i, t := range ts {
		out[i] = w.Eval(t)
	}
}

// EvalBatch implements BatchEvaluator.
func (d DC) EvalBatch(ts, out []float64) {
	for i := range ts {
		out[i] = d.Eval(ts[i])
	}
}

// EvalBatch implements BatchEvaluator.
func (s Sine) EvalBatch(ts, out []float64) {
	for i, t := range ts {
		out[i] = s.Eval(t)
	}
}

// EvalBatch implements BatchEvaluator.
func (m *Multitone) EvalBatch(ts, out []float64) {
	for i, t := range ts {
		out[i] = m.Eval(t)
	}
}

// EvalBatch implements BatchEvaluator.
func (s Square) EvalBatch(ts, out []float64) {
	for i, t := range ts {
		out[i] = s.Eval(t)
	}
}

// EvalBatch implements BatchEvaluator: the base waveform is batch-
// evaluated in place, then clamped.
func (c Clamped) EvalBatch(ts, out []float64) {
	EvalInto(c.Base, ts, out)
	for i, v := range out {
		if v < c.Lo {
			out[i] = c.Lo
		} else if v > c.Hi {
			out[i] = c.Hi
		}
	}
}

// EvalBatch implements BatchEvaluator.
func (p *PWL) EvalBatch(ts, out []float64) {
	for i, t := range ts {
		out[i] = p.Eval(t)
	}
}

// EvalBatch implements BatchEvaluator.
func (s *Sampled) EvalBatch(ts, out []float64) {
	for i, t := range ts {
		out[i] = s.Eval(t)
	}
}
