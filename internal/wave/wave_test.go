package wave

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/rng"
)

func TestDC(t *testing.T) {
	w := DC(0.6)
	if w.Eval(0) != 0.6 || w.Eval(123) != 0.6 {
		t.Fatal("DC not constant")
	}
	if w.Period() != 0 {
		t.Fatal("DC period must be 0")
	}
}

func TestSineBasics(t *testing.T) {
	s := Sine{Amp: 2, Freq: 10, Offset: 1}
	if got := s.Eval(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sine at t=0 = %v, want offset 1", got)
	}
	// Quarter period: sin peaks.
	if got := s.Eval(0.025); math.Abs(got-3) > 1e-9 {
		t.Fatalf("sine peak = %v, want 3", got)
	}
	if p := s.Period(); math.Abs(p-0.1) > 1e-15 {
		t.Fatalf("period = %v, want 0.1", p)
	}
	if (Sine{Freq: 0}).Period() != 0 {
		t.Fatal("zero-frequency sine must report period 0")
	}
}

func TestMultitonePeriod(t *testing.T) {
	m, err := NewMultitone(0.5, 5000, []int{1, 2, 3}, []float64{0.22, 0.13, 0.08}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Period(); math.Abs(p-200e-6) > 1e-12 {
		t.Fatalf("period = %v, want 200 µs", p)
	}
}

func TestMultitonePeriodGCD(t *testing.T) {
	// Harmonics 2 and 4 share GCD 2 -> period halves.
	m, err := NewMultitone(0, 1000, []int{2, 4}, []float64{1, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Period(); math.Abs(p-0.5e-3) > 1e-12 {
		t.Fatalf("period = %v, want 0.5 ms", p)
	}
}

func TestMultitoneIsPeriodic(t *testing.T) {
	m, err := NewMultitone(0.5, 5000, []int{1, 2, 3}, []float64{0.2, 0.1, 0.05}, []float64{0.3, 1.1, -0.7})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Period()
	for _, tt := range []float64{0, 1e-5, 7.3e-5, 1.9e-4} {
		if d := math.Abs(m.Eval(tt) - m.Eval(tt+p)); d > 1e-9 {
			t.Fatalf("waveform not periodic: |v(t)-v(t+T)| = %v at t=%v", d, tt)
		}
	}
}

func TestMultitoneValidation(t *testing.T) {
	if _, err := NewMultitone(0, -5, []int{1}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("negative fundamental accepted")
	}
	if _, err := NewMultitone(0, 5, []int{1, 2}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("mismatched slices accepted")
	}
	if _, err := NewMultitone(0, 5, []int{0}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("zero harmonic accepted")
	}
	if _, err := NewMultitone(0, 5, nil, nil, nil); err == nil {
		t.Fatal("empty tone list accepted")
	}
}

func TestMultitonePeakToPeak(t *testing.T) {
	m, _ := NewMultitone(0.5, 1000, []int{1, 2}, []float64{0.2, -0.1}, []float64{0, 0})
	lo, hi := m.PeakToPeak()
	if math.Abs(lo-0.2) > 1e-12 || math.Abs(hi-0.8) > 1e-12 {
		t.Fatalf("PeakToPeak = %v,%v want 0.2,0.8", lo, hi)
	}
}

func TestMultitoneSpectrum(t *testing.T) {
	// The sampled multitone must show exactly its tone amplitudes.
	m, err := NewMultitone(0.5, 5000, []int{1, 2, 3}, []float64{0.22, 0.13, 0.08}, []float64{0, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rec := SamplePeriods(m, 1, 2000)
	sp := dsp.AmplitudeSpectrum(rec.V, rec.Fs)
	checks := []struct {
		freq, amp float64
	}{{0, 0.5}, {5000, 0.22}, {10000, 0.13}, {15000, 0.08}}
	for _, c := range checks {
		bin := int(math.Round(c.freq / (rec.Fs / float64(len(rec.V)))))
		if math.Abs(sp.Amp[bin]-c.amp) > 1e-6 {
			t.Fatalf("amp at %g Hz = %v, want %v", c.freq, sp.Amp[bin], c.amp)
		}
	}
}

func TestSquare(t *testing.T) {
	s := Square{Lo: 0, Hi: 1, Freq: 100, Duty: 0.25}
	if s.Eval(0.001) != 1 { // 10% into period
		t.Fatal("square should be Hi early in period")
	}
	if s.Eval(0.005) != 0 { // 50% into period
		t.Fatal("square should be Lo past duty")
	}
	if s.Period() != 0.01 {
		t.Fatalf("period = %v, want 0.01", s.Period())
	}
	if (Square{Freq: 0, Lo: -1}).Eval(3) != -1 {
		t.Fatal("zero-frequency square should sit at Lo")
	}
}

func TestNoisyStatistics(t *testing.T) {
	n := &Noisy{Base: DC(0.5), Sigma: 0.005, Src: rng.New(42)}
	if n.Period() != 0 {
		t.Fatal("noisy DC period should be 0")
	}
	sum, sumSq := 0.0, 0.0
	N := 100000
	for i := 0; i < N; i++ {
		v := n.Eval(0) - 0.5
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(N)
	std := math.Sqrt(sumSq/float64(N) - mean*mean)
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.005) > 2e-4 {
		t.Fatalf("noise std = %v, want 0.005", std)
	}
}

func TestClamped(t *testing.T) {
	c := Clamped{Base: Sine{Amp: 2, Freq: 1}, Lo: -1, Hi: 1}
	if got := c.Eval(0.25); got != 1 {
		t.Fatalf("clamp high = %v, want 1", got)
	}
	if got := c.Eval(0.75); got != -1 {
		t.Fatalf("clamp low = %v, want -1", got)
	}
	if c.Period() != 1 {
		t.Fatal("clamped period must delegate")
	}
}

func TestSampleGrid(t *testing.T) {
	rec := Sample(DC(2), 1e-3, 1e6)
	if len(rec.V) != 1000 {
		t.Fatalf("sample count = %d, want 1000", len(rec.V))
	}
	if rec.T[0] != 0 || math.Abs(rec.T[999]-999e-6) > 1e-12 {
		t.Fatalf("time grid wrong: %v ... %v", rec.T[0], rec.T[999])
	}
	for _, v := range rec.V {
		if v != 2 {
			t.Fatal("DC sample wrong")
		}
	}
}

func TestSamplePeriodsPanicsOnAperiodic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for aperiodic waveform")
		}
	}()
	SamplePeriods(DC(1), 1, 100)
}

// Property: multitone amplitude never exceeds the PeakToPeak bound.
func TestMultitoneBoundProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		amps := []float64{r.Uniform(0, 0.3), r.Uniform(0, 0.2), r.Uniform(0, 0.1)}
		phases := []float64{r.Uniform(0, 6.28), r.Uniform(0, 6.28), r.Uniform(0, 6.28)}
		m, err := NewMultitone(0.5, 1000, []int{1, 2, 3}, amps, phases)
		if err != nil {
			return false
		}
		lo, hi := m.PeakToPeak()
		for i := 0; i < 500; i++ {
			v := m.Eval(float64(i) * 2e-6)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL(nil, nil, 0); err == nil {
		t.Fatal("empty PWL accepted")
	}
	if _, err := NewPWL([]float64{0, 0}, []float64{1, 2}, 0); err == nil {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := NewPWL([]float64{0, 1}, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative repeat accepted")
	}
	if _, err := NewPWL([]float64{0, 2}, []float64{1, 2}, 1); err == nil {
		t.Fatal("knots past repeat period accepted")
	}
}

func TestPWLInterpolation(t *testing.T) {
	p, err := NewPWL([]float64{0, 1e-3, 2e-3}, []float64{0, 1, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-1, 0}, // before first knot: hold
		{0, 0},
		{0.5e-3, 0.5}, // mid first segment
		{1e-3, 1},
		{1.5e-3, 0.75}, // mid second segment
		{5e-3, 0.5},    // after last knot: hold
	}
	for _, c := range cases {
		if got := p.Eval(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("PWL(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if p.Period() != 0 {
		t.Fatal("non-repeating PWL must report period 0")
	}
}

func TestPWLRepeats(t *testing.T) {
	// Sawtooth: 0 at t=0, 1 at 0.8ms, wraps back to 0 at 1ms.
	p, err := NewPWL([]float64{0, 0.8e-3}, []float64{0, 1}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Period() != 1e-3 {
		t.Fatalf("period = %v", p.Period())
	}
	if got := p.Eval(0.4e-3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ramp value = %v, want 0.5", got)
	}
	// Wrap segment: halfway between 0.8ms (1.0) and 1.0ms (0.0).
	if got := p.Eval(0.9e-3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("wrap value = %v, want 0.5", got)
	}
	// Periodicity.
	for _, tt := range []float64{0.1e-3, 0.65e-3, 0.93e-3} {
		if d := math.Abs(p.Eval(tt) - p.Eval(tt+3e-3)); d > 1e-12 {
			t.Fatalf("PWL not periodic at t=%v: Δ=%v", tt, d)
		}
	}
	// Negative time wraps.
	if d := math.Abs(p.Eval(-0.1e-3) - p.Eval(0.9e-3)); d > 1e-12 {
		t.Fatal("negative time wrap broken")
	}
}

func TestPWLDrivesTransient(t *testing.T) {
	// PWL as a spice source: ramp into an RC; final value settles to 1.
	p, err := NewPWL([]float64{0, 1e-4}, []float64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eval(2e-4) != 1 {
		t.Fatal("ramp should hold at 1")
	}
}

func TestSampledPeriodicInterpolation(t *testing.T) {
	// Four samples of one period: 0, 1, 0, -1 (a coarse sine).
	s, err := NewSampled([]float64{0, 1, 0, -1}, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 4e-3 {
		t.Fatalf("period = %v", s.Period())
	}
	cases := []struct{ t, want float64 }{
		{0, 0},
		{1e-3, 1},
		{0.5e-3, 0.5},  // midway between samples 0 and 1
		{3.5e-3, -0.5}, // wrap segment: last sample back toward the first
		{4e-3, 0},      // exactly one period wraps to phase 0
		{5e-3, 1},      // periodicity
		{-3e-3, 1},     // negative time wraps too
	}
	for _, c := range cases {
		if got := s.Eval(c.t); got != c.want {
			t.Fatalf("Eval(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSampledValidation(t *testing.T) {
	if _, err := NewSampled([]float64{1}, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := NewSampled([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	// The input slice is copied: mutating it must not affect the waveform.
	v := []float64{0, 1}
	s, err := NewSampled(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	if s.Eval(0) != 0 {
		t.Fatal("samples not copied")
	}
}

func TestSampledReuse(t *testing.T) {
	s, err := NewSampled([]float64{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse aliases: mutating the buffer changes the waveform, and no
	// allocation happens on the refresh path.
	buf := []float64{2, 4, 6, 8}
	if err := s.Reuse(buf, 2); err != nil {
		t.Fatal(err)
	}
	if s.Period() != 2 {
		t.Fatalf("period = %v after Reuse", s.Period())
	}
	if got := s.Eval(0.5); got != 4 {
		t.Fatalf("Eval(0.5) = %v, want 4", got)
	}
	buf[1] = -4
	if got := s.Eval(0.5); got != -4 {
		t.Fatal("Reuse must alias, not copy")
	}
	if err := s.Reuse([]float64{1}, 1); err == nil {
		t.Fatal("single sample accepted by Reuse")
	}
	if err := s.Reuse(buf, 0); err == nil {
		t.Fatal("zero period accepted by Reuse")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.Reuse(buf, 2); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reuse allocates %.1f times per run, want 0", allocs)
	}
}
