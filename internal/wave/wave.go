// Package wave generates the analog stimulus and measurement waveforms
// used throughout the reproduction: sinusoids, the multitone Lissajous
// excitation of the paper's Biquad experiment, DC levels, and additive
// white Gaussian measurement noise.
//
// A Waveform is a continuous-time function; sampling utilities turn it
// into uniformly spaced records for the capture and DSP layers.
package wave

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Waveform is a continuous-time scalar signal.
type Waveform interface {
	// Eval returns the waveform value at time t (seconds).
	Eval(t float64) float64
	// Period returns the fundamental period in seconds, or 0 if the
	// waveform is aperiodic (e.g. DC or noise).
	Period() float64
}

// DC is a constant waveform.
type DC float64

// Eval implements Waveform.
func (d DC) Eval(float64) float64 { return float64(d) }

// Period implements Waveform; a constant has no period.
func (d DC) Period() float64 { return 0 }

// Sine is a single sinusoidal tone: Offset + Amp*sin(2π·Freq·t + Phase).
type Sine struct {
	Amp    float64 // amplitude (V)
	Freq   float64 // frequency (Hz), must be > 0
	Phase  float64 // phase (rad)
	Offset float64 // DC offset (V)
}

// Eval implements Waveform.
func (s Sine) Eval(t float64) float64 {
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*t+s.Phase)
}

// Period implements Waveform.
func (s Sine) Period() float64 {
	if s.Freq <= 0 {
		return 0
	}
	return 1 / s.Freq
}

// Tone is one component of a multitone stimulus.
type Tone struct {
	Amp   float64
	Freq  float64
	Phase float64
}

// Multitone is a sum of sinusoidal tones plus a DC offset. Tone
// frequencies should be rational multiples of each other so the composed
// Lissajous trace is periodic; NewMultitone enforces this by construction
// (integer harmonics of a fundamental).
type Multitone struct {
	Offset float64
	Tones  []Tone
	period float64
}

// NewMultitone builds a multitone from a fundamental frequency f0 (Hz) and
// harmonic descriptors: harmonics[i] gives the integer multiple, amps[i]
// and phases[i] its amplitude and phase. The resulting waveform has period
// 1/f0 divided by the GCD of the harmonic numbers.
func NewMultitone(offset, f0 float64, harmonics []int, amps, phases []float64) (*Multitone, error) {
	if f0 <= 0 {
		return nil, fmt.Errorf("wave: fundamental %g Hz must be positive", f0)
	}
	if len(harmonics) == 0 || len(harmonics) != len(amps) || len(harmonics) != len(phases) {
		return nil, fmt.Errorf("wave: harmonics/amps/phases must be equal-length and non-empty")
	}
	m := &Multitone{Offset: offset}
	g := 0
	for i, h := range harmonics {
		if h <= 0 {
			return nil, fmt.Errorf("wave: harmonic %d must be positive, got %d", i, h)
		}
		m.Tones = append(m.Tones, Tone{Amp: amps[i], Freq: float64(h) * f0, Phase: phases[i]})
		g = gcd(g, h)
	}
	m.period = 1 / (f0 * float64(g))
	return m, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Eval implements Waveform.
func (m *Multitone) Eval(t float64) float64 {
	v := m.Offset
	for _, tn := range m.Tones {
		v += tn.Amp * math.Sin(2*math.Pi*tn.Freq*t+tn.Phase)
	}
	return v
}

// Period implements Waveform.
func (m *Multitone) Period() float64 { return m.period }

// PeakToPeak returns a conservative bound on the waveform swing:
// offset ± sum of amplitudes.
func (m *Multitone) PeakToPeak() (lo, hi float64) {
	sum := 0.0
	for _, tn := range m.Tones {
		sum += math.Abs(tn.Amp)
	}
	return m.Offset - sum, m.Offset + sum
}

// Square is a square wave toggling between Lo and Hi with the given
// frequency and duty cycle (fraction of the period spent at Hi).
type Square struct {
	Lo, Hi float64
	Freq   float64
	Duty   float64
}

// Eval implements Waveform.
func (s Square) Eval(t float64) float64 {
	if s.Freq <= 0 {
		return s.Lo
	}
	frac := t*s.Freq - math.Floor(t*s.Freq)
	if frac < s.Duty {
		return s.Hi
	}
	return s.Lo
}

// Period implements Waveform.
func (s Square) Period() float64 {
	if s.Freq <= 0 {
		return 0
	}
	return 1 / s.Freq
}

// Noisy decorates a waveform with additive white Gaussian noise of
// standard deviation Sigma. Each Eval call draws a fresh variate, which
// models wideband noise sampled far above the signal bandwidth (the
// paper's "high frequency white noise ... 3σ spread of 0.015 V").
type Noisy struct {
	Base  Waveform
	Sigma float64
	Src   *rng.Stream
}

// Eval implements Waveform.
func (n *Noisy) Eval(t float64) float64 {
	return n.Base.Eval(t) + n.Src.Gauss(0, n.Sigma)
}

// Period implements Waveform (delegates to the base waveform).
func (n *Noisy) Period() float64 { return n.Base.Period() }

// Clamped limits a waveform to [Lo, Hi], modelling rail clipping.
type Clamped struct {
	Base   Waveform
	Lo, Hi float64
}

// Eval implements Waveform.
func (c Clamped) Eval(t float64) float64 {
	v := c.Base.Eval(t)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Period implements Waveform.
func (c Clamped) Period() float64 { return c.Base.Period() }

// PWL is a piecewise-linear waveform defined by (time, value) knots,
// SPICE's PWL source. Before the first knot it holds the first value;
// after the last knot it either holds the last value or, if RepeatEvery
// is positive, wraps modulo that period.
type PWL struct {
	T, V        []float64
	RepeatEvery float64
}

// NewPWL validates and builds a PWL waveform. Times must be strictly
// increasing and at least one knot is required.
func NewPWL(t, v []float64, repeatEvery float64) (*PWL, error) {
	if len(t) == 0 || len(t) != len(v) {
		return nil, fmt.Errorf("wave: PWL needs matched non-empty knots")
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, fmt.Errorf("wave: PWL times must be strictly increasing at knot %d", i)
		}
	}
	if repeatEvery < 0 {
		return nil, fmt.Errorf("wave: negative repeat period")
	}
	if repeatEvery > 0 && t[len(t)-1] > repeatEvery {
		return nil, fmt.Errorf("wave: knots extend past the repeat period")
	}
	return &PWL{T: append([]float64(nil), t...), V: append([]float64(nil), v...), RepeatEvery: repeatEvery}, nil
}

// Eval implements Waveform.
func (p *PWL) Eval(t float64) float64 {
	if p.RepeatEvery > 0 {
		t = math.Mod(t, p.RepeatEvery)
		if t < 0 {
			t += p.RepeatEvery
		}
	}
	n := len(p.T)
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		if p.RepeatEvery > 0 && n > 1 {
			// Wrap segment from last knot back to the first.
			span := p.RepeatEvery - p.T[n-1] + p.T[0]
			if span <= 0 {
				return p.V[n-1]
			}
			f := (t - p.T[n-1]) / span
			return p.V[n-1] + (p.V[0]-p.V[n-1])*f
		}
		return p.V[n-1]
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - p.T[lo]) / (p.T[hi] - p.T[lo])
	return p.V[lo] + (p.V[hi]-p.V[lo])*f
}

// Period implements Waveform.
func (p *PWL) Period() float64 { return p.RepeatEvery }

// Sampled is a periodic waveform defined by n uniform samples over one
// period — sample i sits at phase i·period/n and the segment from the
// last sample wraps back to the first. Eval interpolates linearly with
// wraparound. It is how a numerically simulated steady-state output
// (e.g. a SPICE transient period) re-enters the continuous-time
// signal-path as a first-class Waveform.
type Sampled struct {
	v      []float64
	period float64
}

// NewSampled builds a periodic sampled waveform; the samples are copied.
func NewSampled(samples []float64, period float64) (*Sampled, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("wave: sampled waveform needs >= 2 samples, got %d", len(samples))
	}
	if period <= 0 || math.IsInf(period, 0) || math.IsNaN(period) {
		return nil, fmt.Errorf("wave: sampled waveform period %g must be positive and finite", period)
	}
	return &Sampled{v: append([]float64(nil), samples...), period: period}, nil
}

// Reuse repoints s at the caller's sample buffer, with NewSampled's
// validation. Unlike NewSampled the samples are aliased, not copied:
// the waveform is valid only until the caller overwrites the buffer.
// It exists for the SPICE trial scratch, which refills one sample
// buffer per trial and re-issues it as a Waveform without allocating.
func (s *Sampled) Reuse(samples []float64, period float64) error {
	if len(samples) < 2 {
		return fmt.Errorf("wave: sampled waveform needs >= 2 samples, got %d", len(samples))
	}
	if period <= 0 || math.IsInf(period, 0) || math.IsNaN(period) {
		return fmt.Errorf("wave: sampled waveform period %g must be positive and finite", period)
	}
	s.v = samples
	s.period = period
	return nil
}

// Eval implements Waveform by linear interpolation between the two
// neighbouring samples, wrapping modulo the period.
func (s *Sampled) Eval(t float64) float64 {
	n := len(s.v)
	u := math.Mod(t, s.period)
	if u < 0 {
		u += s.period
	}
	x := u / s.period * float64(n)
	i := int(x)
	if i >= n { // guards the u == period rounding corner
		i = n - 1
	}
	frac := x - float64(i)
	j := i + 1
	if j >= n {
		j = 0
	}
	return s.v[i] + (s.v[j]-s.v[i])*frac
}

// Period implements Waveform.
func (s *Sampled) Period() float64 { return s.period }

// Record is a uniformly sampled waveform segment.
type Record struct {
	T  []float64 // sample times (s)
	V  []float64 // sample values
	Fs float64   // sample rate (Hz)
}

// Sample records w over [0, dur) at sample rate fs.
func Sample(w Waveform, dur, fs float64) Record {
	n := int(math.Round(dur * fs))
	if n < 1 {
		n = 1
	}
	rec := Record{
		T:  make([]float64, n),
		V:  make([]float64, n),
		Fs: fs,
	}
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		rec.T[i] = t
		rec.V[i] = w.Eval(t)
	}
	return rec
}

// SamplePeriods records exactly nPeriods of a periodic waveform with
// samplesPerPeriod points per period. It panics for aperiodic waveforms.
func SamplePeriods(w Waveform, nPeriods, samplesPerPeriod int) Record {
	p := w.Period()
	if p <= 0 {
		panic("wave: SamplePeriods needs a periodic waveform")
	}
	fs := float64(samplesPerPeriod) / p
	return Sample(w, p*float64(nPeriods), fs)
}
