package wave

import (
	"testing"

	"repro/internal/rng"
)

// TestEvalIntoMatchesScalar: every batch evaluator must be bit-identical
// to its scalar Eval, sample for sample.
func TestEvalIntoMatchesScalar(t *testing.T) {
	mt, err := NewMultitone(0.5, 5e3, []int{1, 2, 3},
		[]float64{0.22, 0.13, 0.08}, []float64{0, 0.3, -0.1})
	if err != nil {
		t.Fatal(err)
	}
	pwl, err := NewPWL([]float64{0, 1e-4, 1.5e-4}, []float64{0, 1, -1}, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := NewSampled([]float64{0, 0.5, 1, 0.25}, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	waves := []Waveform{
		DC(0.7),
		Sine{Amp: 0.3, Freq: 10e3, Phase: 0.4, Offset: 0.5},
		mt,
		Square{Lo: 0, Hi: 1, Freq: 5e3, Duty: 0.3},
		Clamped{Base: mt, Lo: 0.2, Hi: 0.8},
		pwl,
		smp,
	}
	src := rng.New(17)
	ts := make([]float64, 512)
	for i := range ts {
		ts[i] = (src.Float64()*3 - 0.5) * 2e-4 // includes negative and wrapped times
	}
	out := make([]float64, len(ts))
	for _, w := range waves {
		if _, ok := w.(BatchEvaluator); !ok {
			t.Fatalf("%T does not implement BatchEvaluator", w)
		}
		EvalInto(w, ts, out)
		for i, tt := range ts {
			if want := w.Eval(tt); out[i] != want {
				t.Fatalf("%T at t=%v: batch %v, scalar %v", w, tt, out[i], want)
			}
		}
	}
}

// TestEvalIntoFallbackPreservesDrawOrder: stateful waveforms go through
// the scalar fallback, which draws noise in sample order — identical to
// a hand-written Eval loop with the same stream.
func TestEvalIntoFallbackPreservesDrawOrder(t *testing.T) {
	base := Sine{Amp: 0.3, Freq: 10e3, Offset: 0.5}
	ts := make([]float64, 64)
	for i := range ts {
		ts[i] = float64(i) * 1e-6
	}
	n1 := &Noisy{Base: base, Sigma: 0.01, Src: rng.New(5)}
	got := make([]float64, len(ts))
	EvalInto(n1, ts, got)
	n2 := &Noisy{Base: base, Sigma: 0.01, Src: rng.New(5)}
	for i, tt := range ts {
		if want := n2.Eval(tt); got[i] != want {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestEvalIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	EvalInto(DC(1), make([]float64, 3), make([]float64, 2))
}
