// Package rng provides small, fast, deterministic pseudo-random streams
// for Monte Carlo process variation, device mismatch, and measurement
// noise. Every experiment in the repository seeds its own stream so all
// figures and tables are bit-reproducible run to run.
//
// The generator is splitmix64 feeding a xoshiro256** core — high quality,
// trivially seedable, and allocation-free. Gaussian variates use the
// Marsaglia polar method with a cached spare.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. The zero value is not
// usable; construct with New.
//
// A Stream is NOT safe for concurrent use: every draw mutates the
// generator state, so two goroutines sharing one stream race and destroy
// reproducibility. Give each goroutine its own stream — derived with
// NewSub(root, id) from a pure (seed, index) pair, or with Split called
// serially before fan-out. The campaign engine does exactly this for
// Monte Carlo trials.
type Stream struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// splitmix64 is used to expand a single seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// Avoid the (practically impossible) all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// Split derives a new independent stream from s, keyed by id. It is used
// to give each Monte Carlo sample or each device its own stream without
// coordinating seeds globally. Split advances s, so the derived stream
// depends on call order: call it serially (before any fan-out) when the
// substreams feed parallel workers.
func (s *Stream) Split(id uint64) *Stream {
	return New(s.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

// NewSub returns the id-th substream of the root seed. Unlike Split it is
// a pure function of (root, id) — it reads no shared state, so parallel
// workers can derive their trial streams concurrently and the result is
// independent of scheduling and worker count.
func NewSub(root, id uint64) *Stream {
	x := root
	a := splitmix64(&x)
	y := id ^ 0xd1b54a32d192ed03
	b := splitmix64(&y)
	return New(a ^ rotl(b, 17) ^ 0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	r := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return r
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free for practical purposes: modulo bias is
	// below 2^-32 for the n used here; keep it simple and branch-free.
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard Gaussian variate (mean 0, std 1).
func (s *Stream) Norm() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r2 := u*u + v*v
		if r2 >= 1 || r2 == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r2) / r2)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// Gauss returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Stream) Gauss(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// NormSlice fills dst with independent standard Gaussian variates.
func (s *Stream) NormSlice(dst []float64) {
	for i := range dst {
		dst[i] = s.Norm()
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
