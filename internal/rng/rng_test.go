package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws from different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of [-3,5): %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := New(99)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(123)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("gaussian variance = %v, want ~1", variance)
	}
}

func TestGaussScaling(t *testing.T) {
	s := New(5)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Gauss(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.05 {
		t.Fatalf("Gauss(10,2) mean = %v, want ~10", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn in 10000 tries", i)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	base := New(42)
	a := base.Split(1)
	b := base.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams correlated: %d/64 equal draws", same)
	}
}

func TestNormSlice(t *testing.T) {
	s := New(8)
	v := make([]float64, 64)
	s.NormSlice(v)
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("non-finite variate %v", x)
		}
	}
	if allZero {
		t.Fatal("NormSlice left slice zeroed")
	}
}

// Property: any seed yields a usable stream whose first 32 floats are in
// range and not all identical.
func TestAnySeedUsableProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s := New(seed)
		first := s.Float64()
		varied := false
		for i := 0; i < 31; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
			if v != first {
				varied = true
			}
		}
		return varied
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
