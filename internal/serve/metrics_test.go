package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbench"
)

// scrape fetches /metrics in the requested format from the test server.
func scrape(t *testing.T, url, format string) []byte {
	t.Helper()
	target := url + "/metrics"
	if format != "" {
		target += "?format=" + format
	}
	resp, err := http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", target, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// snapshot decodes the JSON variant of a scrape.
func snapshot(t *testing.T, url string) metrics.JSONSnapshot {
	t.Helper()
	var snap metrics.JSONSnapshot
	if err := json.Unmarshal(scrape(t, url, "json"), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// total reads one family's summed scalar value out of a snapshot.
func total(t *testing.T, snap metrics.JSONSnapshot, name string) float64 {
	t.Helper()
	f, ok := snap.Find(name)
	if !ok {
		t.Fatalf("family %s missing from scrape", name)
	}
	return f.Total()
}

// histCount reads a plain histogram family's observation count.
func histCount(t *testing.T, snap metrics.JSONSnapshot, name string) uint64 {
	t.Helper()
	f, ok := snap.Find(name)
	if !ok {
		t.Fatalf("family %s missing from scrape", name)
	}
	if len(f.Metrics) != 1 || f.Metrics[0].Count == nil {
		t.Fatalf("family %s is not a plain histogram", name)
	}
	return *f.Metrics[0].Count
}

// Running a campaign end to end moves every layer of the instrument
// set: trials counted, chunks timed, the job accounted by terminal
// state, and the HTTP routes that carried it counted and timed.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	before := snapshot(t, ts.URL)

	const n = 4096
	resp, st := postSpec(t, ts.URL,
		`{"campaign":"yield","seed":3,"workers":4,"chunk":256,"params":{"n":4096}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %s", resp.Status)
	}
	waitState(t, ts.URL, st.ID, 30*time.Second, StateDone)

	after := snapshot(t, ts.URL)
	if d := total(t, after, "mccampaign_trials_total") - total(t, before, "mccampaign_trials_total"); d != n {
		t.Fatalf("trial counter moved by %v, campaign ran %d trials", d, n)
	}
	wantChunks := uint64(n / 256)
	if d := histCount(t, after, "mccampaign_chunk_seconds") - histCount(t, before, "mccampaign_chunk_seconds"); d != wantChunks {
		t.Fatalf("chunk latency histogram grew by %d observations, want %d", d, wantChunks)
	}
	doneJobs, ok := after.Find("mcserved_jobs_total")
	if !ok {
		t.Fatal("mcserved_jobs_total missing from scrape")
	}
	var doneCount float64
	for _, m := range doneJobs.Metrics {
		if m.LabelValue == StateDone && m.Value != nil {
			doneCount = *m.Value
		}
	}
	if doneCount < 1 {
		t.Fatalf("jobs_total{state=done} = %v after a completed job", doneCount)
	}
	if v := total(t, after, "mcserved_jobs_in_flight"); v != 0 {
		t.Fatalf("jobs_in_flight = %v with no job running", v)
	}
	if v := total(t, after, "mccampaign_workers_busy"); v != 0 {
		t.Fatalf("workers_busy = %v with no job running", v)
	}
	if v := total(t, after, "mccampaign_workers_configured"); v != 4 {
		t.Fatalf("workers_configured = %v, job ran with 4", v)
	}
	reqs, ok := after.Find("mcserved_http_requests_total")
	if !ok {
		t.Fatal("mcserved_http_requests_total missing from scrape")
	}
	byRoute := map[string]float64{}
	for _, m := range reqs.Metrics {
		if m.Value != nil {
			byRoute[m.LabelValue] = *m.Value
		}
	}
	if byRoute["/v1/campaigns"] < 1 || byRoute["/v1/jobs/{id}"] < 1 || byRoute["/metrics"] < 1 {
		t.Fatalf("per-route request counts incomplete: %v", byRoute)
	}
	lat, ok := after.Find("mcserved_http_request_seconds")
	if !ok || len(lat.Metrics) == 0 {
		t.Fatal("mcserved_http_request_seconds missing or empty")
	}
}

// Scrape determinism through the serve stack: a quiescent registry
// renders byte-identically, and over HTTP — where each scrape ticks its
// own request counter afterwards — consecutive scrapes expose the same
// families in the same order with the same label children. This is the
// property dashboards and the load gate's before/after diffing rely on.
func TestMetricsScrapeDeterministicOverHTTP(t *testing.T) {
	s, ts := newTestServer(t)
	_, st := postSpec(t, ts.URL, `{"campaign":"yield","seed":9,"params":{"n":512}}`)
	waitState(t, ts.URL, st.ID, 30*time.Second, StateDone)

	var a, b bytes.Buffer
	if err := s.Metrics().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Metrics().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two scrapes of a quiescent registry differ:\n%s\n---\n%s", a.String(), b.String())
	}

	shape := func(snap metrics.JSONSnapshot) []string {
		var out []string
		for _, f := range snap.Families {
			line := f.Name + "|" + f.Type + "|" + f.Label
			for _, m := range f.Metrics {
				line += "|" + m.LabelValue
			}
			out = append(out, line)
		}
		return out
	}
	// Warm up: the first /metrics scrape itself mints the "/metrics"
	// route child after it renders, so compare scrapes past bootstrap.
	_ = snapshot(t, ts.URL)
	s1 := shape(snapshot(t, ts.URL))
	s2 := shape(snapshot(t, ts.URL))
	if len(s1) == 0 {
		t.Fatal("empty scrape")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("scrape order drifted at family %d:\n%s\nvs\n%s", i, s1[i], s2[i])
		}
	}
}

// A campaign run with the full metrics stack attached returns exactly
// the bytes a bare run returns, at 1, 4 and 8 workers — the ISSUE's
// bit-identity acceptance gate, exercised through the serve layer that
// actually attaches the instruments.
func TestMetricsDoNotAffectResults(t *testing.T) {
	spec := func(workers int) testbench.Spec {
		return testbench.Spec{Campaign: "yield", Seed: 11, Workers: workers, Chunk: 128,
			Params: map[string]any{"n": float64(2048)}}
	}
	run := func(workers int) string {
		s := New(nil)
		defer s.Close()
		st, err := s.Submit(spec(workers))
		if err != nil {
			t.Fatal(err)
		}
		j, _ := s.Job(st.ID)
		for j.State == StateRunning {
			time.Sleep(5 * time.Millisecond)
			j, _ = s.Job(st.ID)
		}
		if j.State != StateDone {
			t.Fatalf("workers=%d: job ended %s: %s", workers, j.State, j.Error)
		}
		data, err := json.Marshal(j.Result.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		if got := run(w); got != ref {
			t.Fatalf("instrumented run at %d workers differs from 1-worker run:\n%s\nvs\n%s", w, got, ref)
		}
	}
}
