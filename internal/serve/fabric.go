// fabric.go is the wire layer of the distributed campaign fabric: it
// exposes a fabric.Coordinator over HTTP and gives fabric.Worker an
// HTTP Backend, so mcserved instances on different machines form one
// campaign fabric.
//
// API (JSON everywhere; mounted next to the /v1 job engine):
//
//	POST /v1/fabric/jobs             submit a durable sharded job {id?, spec, shards}
//	GET  /v1/fabric/jobs             ids of every durable job
//	GET  /v1/fabric/jobs/{id}        phase + per-shard progress
//	GET  /v1/fabric/jobs/{id}/result the finalized Result once done
//	POST /v1/fabric/jobs/{id}/cancel revoke every lease and cancel
//	POST /v1/shards/lease            worker pull: next pending shard or 204
//	POST /v1/shards/heartbeat        extend a lease, optionally persisting a checkpoint
//	POST /v1/shards/report           deliver a completed span's accumulator
//	POST /v1/shards/fail             report a deterministic span failure
//
// Lease-protocol errors travel as machine-readable codes so the
// client-side Backend can map them back to the fabric's sentinel
// errors: a worker keyed off ErrLeaseRevoked behaves identically
// in-process and across the wire.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/fabric"
	"repro/internal/testbench"
)

// Fabric serves a fabric.Coordinator over HTTP.
type Fabric struct {
	coord *fabric.Coordinator
}

// NewFabric wraps a coordinator for HTTP serving.
func NewFabric(c *fabric.Coordinator) *Fabric { return &Fabric{coord: c} }

// Coordinator returns the wrapped coordinator.
func (f *Fabric) Coordinator() *fabric.Coordinator { return f.coord }

// Handler mounts the fabric API; route it under /v1/fabric/ and
// /v1/shards/.
func (f *Fabric) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fabric/jobs", f.handleJobs)
	mux.HandleFunc("/v1/fabric/jobs/", f.handleJob)
	mux.HandleFunc("/v1/shards/lease", f.handleLease)
	mux.HandleFunc("/v1/shards/heartbeat", f.handleHeartbeat)
	mux.HandleFunc("/v1/shards/report", f.handleReport)
	mux.HandleFunc("/v1/shards/fail", f.handleFail)
	return mux
}

// Wire error codes for the fabric's sentinel errors.
const (
	codeUnknownJob   = "unknown_job"
	codeUnknownLease = "unknown_lease"
	codeLeaseRevoked = "lease_revoked"
	codeJobDone      = "job_done"
)

// errorCode maps a fabric error to its wire code and HTTP status.
func errorCode(err error) (string, int) {
	switch {
	case errors.Is(err, fabric.ErrUnknownJob):
		return codeUnknownJob, http.StatusNotFound
	case errors.Is(err, fabric.ErrUnknownLease):
		return codeUnknownLease, http.StatusConflict
	case errors.Is(err, fabric.ErrLeaseRevoked):
		return codeLeaseRevoked, http.StatusConflict
	case errors.Is(err, fabric.ErrJobDone):
		return codeJobDone, http.StatusConflict
	}
	return "", http.StatusBadRequest
}

// codeError reverses errorCode on the client side.
func codeError(code, msg string) error {
	switch code {
	case codeUnknownJob:
		return fmt.Errorf("%w: %s", fabric.ErrUnknownJob, msg)
	case codeUnknownLease:
		return fmt.Errorf("%w: %s", fabric.ErrUnknownLease, msg)
	case codeLeaseRevoked:
		return fmt.Errorf("%w: %s", fabric.ErrLeaseRevoked, msg)
	case codeJobDone:
		return fmt.Errorf("%w: %s", fabric.ErrJobDone, msg)
	}
	return errors.New(msg)
}

// writeFabricError writes the JSON error envelope with its wire code.
func writeFabricError(w http.ResponseWriter, err error) {
	code, status := errorCode(err)
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// FabricSubmit is the body of POST /v1/fabric/jobs. A missing ID is
// assigned from the submission clock.
type FabricSubmit struct {
	ID     string         `json:"id,omitempty"`
	Spec   testbench.Spec `json:"spec"`
	Shards int            `json:"shards"`
}

// ShardStatus is one shard's progress in a job status (accumulator
// blobs stay in the store; the status reports their coverage).
type ShardStatus struct {
	Span    campaign.Span `json:"span"`
	Through int           `json:"through"`
	Done    bool          `json:"done"`
}

// FabricJobStatus is the wire form of a durable job's state.
type FabricJobStatus struct {
	ID      string        `json:"id"`
	Phase   fabric.Phase  `json:"phase"`
	Failure string        `json:"failure,omitempty"`
	Shards  []ShardStatus `json:"shards"`
}

func jobStatus(id string, st fabric.JobState) FabricJobStatus {
	out := FabricJobStatus{ID: id, Phase: st.Phase, Failure: st.Failure, Shards: make([]ShardStatus, len(st.Shards))}
	for i, sh := range st.Shards {
		out.Shards[i] = ShardStatus{Span: sh.Span, Through: sh.Through, Done: sh.Done}
	}
	return out
}

// handleJobs lists durable jobs (GET) and submits new ones (POST).
func (f *Fabric) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, f.coord.Jobs())
	case http.MethodPost:
		var sub FabricSubmit
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sub); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad submission: %w", err))
			return
		}
		if sub.ID == "" {
			sub.ID = fmt.Sprintf("fab-%d", time.Now().UnixNano())
		}
		if sub.Shards < 1 {
			sub.Shards = 1
		}
		if err := f.coord.Submit(r.Context(), sub.ID, sub.Spec, sub.Shards); err != nil {
			writeFabricError(w, err)
			return
		}
		st, err := f.coord.Status(sub.ID)
		if err != nil {
			writeFabricError(w, err)
			return
		}
		w.Header().Set("Location", "/v1/fabric/jobs/"+sub.ID)
		writeJSON(w, http.StatusAccepted, jobStatus(sub.ID, st))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

// handleJob routes /v1/fabric/jobs/{id}[/result|/cancel].
func (f *Fabric) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/fabric/jobs/")
	id, action, _ := strings.Cut(rest, "/")
	switch {
	case action == "" && r.Method == http.MethodGet:
		st, err := f.coord.Status(id)
		if err != nil {
			writeFabricError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(id, st))
	case action == "result" && r.Method == http.MethodGet:
		st, err := f.coord.Status(id)
		if err != nil {
			writeFabricError(w, err)
			return
		}
		if st.Phase != fabric.PhaseDone {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, st.Phase))
			return
		}
		res, err := f.coord.Wait(r.Context(), id)
		if err != nil {
			writeFabricError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case action == "cancel" && r.Method == http.MethodPost:
		if err := f.coord.Cancel(id); err != nil {
			writeFabricError(w, err)
			return
		}
		st, err := f.coord.Status(id)
		if err != nil {
			writeFabricError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(id, st))
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// leaseRequest is the body of POST /v1/shards/lease.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// shardMessage is the body of heartbeat, report, and fail: the lease
// coordinates plus the message's payload.
type shardMessage struct {
	Job     string `json:"job"`
	Token   string `json:"token"`
	Through int    `json:"through,omitempty"`
	Acc     []byte `json:"acc,omitempty"`
	Msg     string `json:"msg,omitempty"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return false
	}
	return true
}

// handleLease pulls the next pending shard; 204 means nothing pending.
func (f *Fabric) handleLease(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, errors.New("lease request without a worker id"))
		return
	}
	ls, ok, err := f.coord.Lease(r.Context(), req.Worker)
	if err != nil {
		writeFabricError(w, err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, ls)
}

func (f *Fabric) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var msg shardMessage
	if !decodeBody(w, r, &msg) {
		return
	}
	ls := &fabric.Lease{Job: msg.Job, Token: msg.Token}
	if err := f.coord.Heartbeat(r.Context(), ls, msg.Through, msg.Acc); err != nil {
		writeFabricError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (f *Fabric) handleReport(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var msg shardMessage
	if !decodeBody(w, r, &msg) {
		return
	}
	ls := &fabric.Lease{Job: msg.Job, Token: msg.Token}
	if err := f.coord.Report(r.Context(), ls, msg.Acc); err != nil {
		writeFabricError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (f *Fabric) handleFail(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var msg shardMessage
	if !decodeBody(w, r, &msg) {
		return
	}
	ls := &fabric.Lease{Job: msg.Job, Token: msg.Token}
	if err := f.coord.Fail(r.Context(), ls, msg.Msg); err != nil {
		writeFabricError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// HTTPBackend is the client half of the shard protocol: a
// fabric.Backend that talks to a remote coordinator's /v1/shards
// endpoints. Wire error codes map back to the fabric's sentinel
// errors, so fabric.Worker needs no HTTP awareness.
type HTTPBackend struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// Client is the HTTP client; nil selects http.DefaultClient.
	Client *http.Client
}

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// post sends one JSON request and decodes the response into out (out ==
// nil skips decoding); 204 returns noContent == true.
func (b *HTTPBackend) post(ctx context.Context, path string, body, out any) (noContent bool, err error) {
	data, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.Base+path, bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client().Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := resp.Body.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}()
	if resp.StatusCode == http.StatusNoContent {
		return true, nil
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(payload, &envelope) == nil && envelope.Error != "" {
			return false, codeError(envelope.Code, envelope.Error)
		}
		return false, fmt.Errorf("serve: %s: %s", path, resp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			return false, fmt.Errorf("serve: %s: decode response: %w", path, err)
		}
	}
	return false, nil
}

// Lease implements fabric.Backend.
func (b *HTTPBackend) Lease(ctx context.Context, workerID string) (*fabric.Lease, bool, error) {
	var ls fabric.Lease
	none, err := b.post(ctx, "/v1/shards/lease", leaseRequest{Worker: workerID}, &ls)
	if err != nil || none {
		return nil, false, err
	}
	return &ls, true, nil
}

// Heartbeat implements fabric.Backend.
func (b *HTTPBackend) Heartbeat(ctx context.Context, ls *fabric.Lease, through int, acc []byte) error {
	_, err := b.post(ctx, "/v1/shards/heartbeat",
		shardMessage{Job: ls.Job, Token: ls.Token, Through: through, Acc: acc}, nil)
	return err
}

// Report implements fabric.Backend.
func (b *HTTPBackend) Report(ctx context.Context, ls *fabric.Lease, acc []byte) error {
	_, err := b.post(ctx, "/v1/shards/report",
		shardMessage{Job: ls.Job, Token: ls.Token, Acc: acc}, nil)
	return err
}

// Fail implements fabric.Backend.
func (b *HTTPBackend) Fail(ctx context.Context, ls *fabric.Lease, msg string) error {
	_, err := b.post(ctx, "/v1/shards/fail",
		shardMessage{Job: ls.Job, Token: ls.Token, Msg: msg}, nil)
	return err
}
