package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbench"
)

// Job states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Progress is a job's completion counter within its current fan-out
// phase (multi-phase campaigns reset it per phase).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the wire form of one job.
type JobStatus struct {
	ID       string            `json:"id"`
	State    string            `json:"state"`
	Spec     testbench.Spec    `json:"spec"`
	Progress Progress          `json:"progress"`
	Error    string            `json:"error,omitempty"`
	Result   *testbench.Result `json:"result,omitempty"`
	Created  time.Time         `json:"created"`
	Finished *time.Time        `json:"finished,omitempty"`
}

// job is the server-side state of one campaign run.
type job struct {
	mu       sync.Mutex
	id       string
	seq      int
	spec     testbench.Spec
	state    string
	progress Progress
	err      string
	result   *testbench.Result
	created  time.Time
	finished *time.Time
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal state
	// trialsSeen is the last progress count fed to the cumulative trial
	// counter (see countTrials); guarded by mu like progress.
	trialsSeen int
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Spec:     j.spec,
		Progress: j.progress,
		Error:    j.err,
		Result:   j.result,
		Created:  j.created,
		Finished: j.finished,
	}
}

// Server is the HTTP campaign service. Create with New, mount Handler,
// Close on shutdown (cancels every running job).
type Server struct {
	mu      sync.Mutex
	jobs    map[string]*job
	seq     int
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	metrics *serverMetrics
}

// New returns a ready server; jobs inherit from ctx (nil = Background),
// so cancelling it — or calling Close — aborts every campaign in flight.
func New(ctx context.Context) *Server {
	if ctx == nil {
		ctx = context.Background() //mclint:ctxflow nil-ctx guard at construction; callers pass the process root ctx and Close cancels every job
	}
	base, stop := context.WithCancel(ctx)
	return &Server{
		jobs:    map[string]*job{},
		baseCtx: base,
		stop:    stop,
		metrics: newServerMetrics(metrics.NewRegistry()),
	}
}

// Metrics returns the server's metric registry — the one GET /metrics
// exposes. Co-resident subsystems (the fabric coordinator in mcserved)
// register their families here so one scrape covers the process.
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }

// Close cancels all running jobs and waits for them to drain.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Submit starts a campaign job for the spec and returns its status — the
// programmatic form of POST /v1/campaigns. The campaign is validated
// (name and params) before the job is created, so a bad spec never
// occupies a job slot.
func (s *Server) Submit(spec testbench.Spec) (JobStatus, error) {
	if err := testbench.Validate(spec); err != nil {
		return JobStatus{}, err
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", s.seq),
		seq:     s.seq,
		spec:    spec,
		state:   StateRunning,
		created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.metrics.jobsInFlight.Add(1)
	s.wg.Add(1)
	go s.run(ctx, cancel, j)
	return j.status(), nil
}

// run executes one job to a terminal state.
func (s *Server) run(ctx context.Context, cancel context.CancelFunc, j *job) {
	defer s.wg.Done()
	defer cancel()
	res, err := testbench.Run(ctx, j.spec,
		testbench.WithProgress(func(done, total int) {
			j.mu.Lock()
			j.progress = Progress{Done: done, Total: total}
			j.countTrials(s.metrics, done)
			j.mu.Unlock()
		}),
		testbench.WithMeter(newJobMeter(s.metrics)))
	now := time.Now()
	j.mu.Lock()
	j.finished = &now
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	s.metrics.jobsInFlight.Add(-1)
	s.metrics.jobsTotal.With(state).Inc()
	close(j.done)
}

// Cancel aborts a running job; cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown job %q", id)
	}
	j.cancel()
	return j.status(), nil
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job, newest first.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].seq > js[b].seq })
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Handler mounts the API, including GET /metrics, with every route
// counted and timed by the per-route request instruments.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.Handle("/metrics", metrics.Handler(s.metrics.reg, "docs/METRICS.md"))
	return s.metrics.instrument(mux)
}

// handleCampaigns serves the registry catalogue (GET) and accepts new
// specs (POST).
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, testbench.List())
	case http.MethodPost:
		var spec testbench.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

// handleJobs lists all jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	writeJSON(w, http.StatusOK, s.Jobs())
}

// handleJob routes /v1/jobs/{id}[/cancel|/events].
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, action, _ := strings.Cut(rest, "/")
	st, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, st)
	case action == "" && r.Method == http.MethodDelete,
		action == "cancel" && r.Method == http.MethodPost:
		st, err := s.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case action == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, id)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
	}
}

// streamEvents pushes the job status as Server-Sent Events until the job
// reaches a terminal state or the client hangs up. Updates are sampled at
// a short interval — campaigns tick progress far faster than a dashboard
// needs — and a frame is only emitted when the status changed.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, id string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.metrics.sseSubs.Add(1)
	defer s.metrics.sseSubs.Add(-1)
	var last string
	emit := func() bool {
		st, ok := s.Job(id)
		if !ok {
			return false
		}
		frame, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if string(frame) != last {
			last = string(frame)
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return false // client hung up; stop streaming
			}
			flusher.Flush()
		}
		return st.State == StateRunning
	}
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for emit() {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
