// Package serve is the campaign-as-a-service layer: an HTTP job engine
// that exposes the testbench campaign registry over the wire. It is the
// implementation behind cmd/mcserved and the in-process server the
// examples, tests and the mcload replay client drive.
//
// API (JSON everywhere unless noted):
//
//	GET    /v1/campaigns          registry catalogue: names, param schemas, defaults
//	POST   /v1/campaigns          submit a testbench.Spec; 202 + job status
//	GET    /v1/jobs               all jobs, newest first
//	GET    /v1/jobs/{id}          one job: state, progress, result when done
//	GET    /v1/jobs/{id}/events   Server-Sent Events stream of job status until terminal
//	POST   /v1/jobs/{id}/cancel   cancel a running job (DELETE /v1/jobs/{id} works too)
//	GET    /metrics               Prometheus text exposition; ?format=json for the JSON variant
//
// # Job lifecycle
//
// Jobs run concurrently, each under its own context; cancelling through
// the API aborts the campaign within one trial's latency, exactly like
// cancelling the context of a direct testbench.Run call — it is the
// same context. A job is terminal in exactly one of the states done,
// failed or cancelled, and stays queryable until the server shuts down.
//
// # Observability contract
//
// Every Server owns a metrics.Registry (see docs/METRICS.md for the
// families) and instruments its own routes; Handler serves the registry
// at GET /metrics, and co-resident subsystems — the fabric coordinator
// inside mcserved — register into the same registry via Metrics().
// Campaign-level instruments attach through the engine's observer hooks
// (testbench.WithProgress, testbench.WithMeter): the engine reports
// events and counts, the adapters here timestamp them, so the campaign
// packages stay clock-free and instrumented runs remain bit-identical
// to bare ones. AccessLog adds structured per-request logging (key=value
// or JSON lines) outside the handler chain.
//
// Middleware wrapping Handler must preserve http.Flusher on the
// response writer, or the SSE stream degrades to one buffered flush at
// job completion; AccessLog's wrapper passes Flush through.
package serve
