package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// serverMetrics is the instrument set one Server owns. Every family is
// registered at construction in a fixed order, so two servers — or two
// scrapes of one — always expose the same families in the same order.
type serverMetrics struct {
	reg *metrics.Registry

	httpRequests *metrics.CounterVec   // by route
	httpSeconds  *metrics.HistogramVec // by route
	jobsInFlight *metrics.Gauge
	jobsTotal    *metrics.CounterVec // by terminal state
	sseSubs      *metrics.Gauge

	trials      *metrics.Counter
	chunkSecs   *metrics.Histogram
	workersBusy *metrics.Gauge
	workersConf *metrics.Gauge
}

// newServerMetrics registers the serve and campaign families on reg.
func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("mcserved_http_requests_total",
			"HTTP requests served, by route pattern.", "", "route"),
		httpSeconds: reg.HistogramVec("mcserved_http_request_seconds",
			"HTTP request latency, by route pattern.", "seconds", "route", nil),
		jobsInFlight: reg.Gauge("mcserved_jobs_in_flight",
			"Campaign jobs currently running.", ""),
		jobsTotal: reg.CounterVec("mcserved_jobs_total",
			"Campaign jobs finished, by terminal state.", "", "state"),
		sseSubs: reg.Gauge("mcserved_sse_subscribers",
			"Open /v1/jobs/{id}/events streams.", ""),
		trials: reg.Counter("mccampaign_trials_total",
			"Monte-Carlo trials completed across all jobs.", ""),
		chunkSecs: reg.Histogram("mccampaign_chunk_seconds",
			"Fold latency of one reduction chunk.", "seconds", nil),
		workersBusy: reg.Gauge("mccampaign_workers_busy",
			"Reduction chunks currently being folded (live worker saturation).", ""),
		workersConf: reg.Gauge("mccampaign_workers_configured",
			"Worker-pool size of the most recently started reduction.", ""),
	}
}

// jobMeter adapts campaign.Meter events into metrics. The campaign
// engine is clock-free by contract, so the timing lives here: ChunkStart
// timestamps the chunk and ChunkDone turns the pair into a latency
// observation. One meter serves one job; meters of concurrent jobs share
// the same instrument set.
type jobMeter struct {
	m  *serverMetrics
	mu sync.Mutex
	at map[int]time.Time // chunk index -> fold start
}

func newJobMeter(m *serverMetrics) *jobMeter {
	return &jobMeter{m: m, at: map[int]time.Time{}}
}

func (jm *jobMeter) ReduceStart(workers, trials int) {
	jm.m.workersConf.Set(float64(workers))
}

func (jm *jobMeter) ChunkStart(chunk int) {
	now := time.Now()
	jm.mu.Lock()
	jm.at[chunk] = now
	jm.mu.Unlock()
	jm.m.workersBusy.Add(1)
}

func (jm *jobMeter) ChunkDone(chunk, trials int) {
	jm.mu.Lock()
	start, ok := jm.at[chunk]
	delete(jm.at, chunk)
	jm.mu.Unlock()
	jm.m.workersBusy.Add(-1)
	if ok {
		jm.m.chunkSecs.Observe(time.Since(start).Seconds())
	}
}

// countTrials feeds the cumulative trial counter from progress ticks.
// Progress reports the completion count of the job's current fan-out
// phase; a drop means a new phase began, so the fresh count is the
// delta. Called under j.mu (the progress callback already serializes
// per job).
func (j *job) countTrials(m *serverMetrics, done int) {
	delta := done - j.trialsSeen
	if done < j.trialsSeen {
		delta = done
	}
	j.trialsSeen = done
	if delta > 0 {
		m.trials.Add(uint64(delta))
	}
}

// route normalizes a request path to its route pattern so the per-route
// label set stays fixed no matter how many jobs exist.
func route(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/campaigns":
		return "/v1/campaigns"
	case p == "/v1/jobs":
		return "/v1/jobs"
	case strings.HasPrefix(p, "/v1/jobs/"):
		rest := strings.TrimPrefix(p, "/v1/jobs/")
		if _, action, _ := strings.Cut(rest, "/"); action != "" {
			return "/v1/jobs/{id}/" + action
		}
		return "/v1/jobs/{id}"
	case p == "/metrics":
		return "/metrics"
	default:
		return "other"
	}
}

// statusWriter records the response code for logging while passing
// Flush through — the SSE stream dies behind a wrapper that hides
// http.Flusher.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument counts and times every request by route pattern.
func (m *serverMetrics) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r)
		start := time.Now()
		next.ServeHTTP(w, r)
		m.httpRequests.With(rt).Inc()
		m.httpSeconds.With(rt).Observe(time.Since(start).Seconds())
	})
}

// Log formats accepted by AccessLog.
const (
	LogText = "text" // key=value pairs, one request per line
	LogJSON = "json" // one JSON object per line
)

// accessRecord is the JSON shape of one request log line.
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Duration float64 `json:"duration_s"`
	Remote   string  `json:"remote,omitempty"`
}

// AccessLog wraps a handler with structured request logging: one line
// per completed request, in key=value form (LogText) or as a JSON
// object (LogJSON), written to out. Lines are serialized under a lock,
// so out needs no locking of its own. Any other format disables
// logging and returns next unchanged.
func AccessLog(out io.Writer, format string, next http.Handler) http.Handler {
	if format != LogText && format != LogJSON {
		return next
	}
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		rec := accessRecord{
			Time:     start.UTC().Format(time.RFC3339Nano),
			Method:   r.Method,
			Path:     r.URL.Path,
			Route:    route(r),
			Status:   sw.code,
			Duration: time.Since(start).Seconds(),
			Remote:   r.RemoteAddr,
		}
		var line []byte
		if format == LogJSON {
			line, _ = json.Marshal(rec)
		} else {
			line = []byte(fmt.Sprintf("time=%s method=%s path=%s route=%s status=%d duration_s=%.6f remote=%s",
				rec.Time, rec.Method, rec.Path, rec.Route, rec.Status, rec.Duration, rec.Remote))
		}
		mu.Lock()
		defer mu.Unlock()
		// A log line that cannot be written is not actionable from the
		// request path; the next scrape of the metrics still has the count.
		_, _ = out.Write(append(line, '\n'))
	})
}
