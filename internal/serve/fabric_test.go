package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/testbench"
)

func newFabricServer(t *testing.T, cfg fabric.Config) (*Fabric, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		store, err := fabric.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	coord := fabric.NewCoordinator(cfg)
	t.Cleanup(func() {
		if err := coord.Close(); err != nil {
			t.Error(err)
		}
	})
	f := NewFabric(coord)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

// TestFabricTwoWorkersOverHTTP is the wire-level version of the fabric
// smoke: a real yield campaign split across two shards, run by two
// workers that only speak the HTTP shard protocol, with one initial
// lease deliberately dropped — the merged result must equal the
// in-process single-node run bit for bit.
func TestFabricTwoWorkersOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign: seconds of trial work")
	}
	spec := testbench.Spec{
		Campaign:   "yield",
		Seed:       5,
		Chunk:      64,
		Checkpoint: 64,
		Params:     map[string]any{"n": 256},
	}
	ctx := context.Background()
	base, err := testbench.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantPayload, err := json.Marshal(base.Payload)
	if err != nil {
		t.Fatal(err)
	}

	f, ts := newFabricServer(t, fabric.Config{LeaseTTL: 300 * time.Millisecond})
	backend := &HTTPBackend{Base: ts.URL}

	// Submit over the wire.
	resp, err := http.Post(ts.URL+"/v1/fabric/jobs", "application/json",
		strings.NewReader(`{"id":"smoke","spec":{"campaign":"yield","seed":5,"chunk":64,"checkpoint":64,"params":{"n":256}},"shards":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st FabricJobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	closeErr := resp.Body.Close()
	if err != nil || closeErr != nil {
		t.Fatal(err, closeErr)
	}
	if resp.StatusCode != http.StatusAccepted || len(st.Shards) != 2 {
		t.Fatalf("submit: %s, %d shards", resp.Status, len(st.Shards))
	}

	// Drop a lease: take shard 0 as a ghost worker and never heartbeat.
	// The TTL must requeue it for the real workers.
	ghost, ok, err := backend.Lease(ctx, "ghost")
	if err != nil || !ok {
		t.Fatalf("ghost lease: ok=%v err=%v", ok, err)
	}

	wctx, stop := context.WithCancel(ctx)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &fabric.Worker{Backend: backend, ID: fmt.Sprintf("w%d", i), Poll: 20 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	res, err := f.Coordinator().Wait(ctx, "smoke")
	stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	gotPayload, err := json.Marshal(res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotPayload) != string(wantPayload) {
		t.Fatalf("fabric payload %s\nsingle-node %s", gotPayload, wantPayload)
	}

	// The ghost's token must have been superseded by the requeue.
	err = backend.Heartbeat(ctx, ghost, 0, nil)
	if !errors.Is(err, fabric.ErrUnknownLease) && !errors.Is(err, fabric.ErrLeaseRevoked) {
		t.Fatalf("ghost heartbeat after requeue: %v", err)
	}

	// Status and result endpoints over the wire.
	resp, err = http.Get(ts.URL + "/v1/fabric/jobs/smoke")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	closeErr = resp.Body.Close()
	if err != nil || closeErr != nil {
		t.Fatal(err, closeErr)
	}
	if st.Phase != fabric.PhaseDone {
		t.Fatalf("status phase %s", st.Phase)
	}
	for i, sh := range st.Shards {
		if !sh.Done || sh.Through != sh.Span.Hi {
			t.Fatalf("shard %d status %+v", i, sh)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/fabric/jobs/smoke/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result endpoint: %s", resp.Status)
	}
	var wire struct {
		Payload json.RawMessage `json:"payload"`
	}
	err = json.NewDecoder(resp.Body).Decode(&wire)
	closeErr = resp.Body.Close()
	if err != nil || closeErr != nil {
		t.Fatal(err, closeErr)
	}
	var rt any
	if err := json.Unmarshal(wire.Payload, &rt); err != nil {
		t.Fatal(err)
	}
	canonical, err := json.Marshal(rt)
	if err != nil {
		t.Fatal(err)
	}
	var baseRT any
	if err := json.Unmarshal(wantPayload, &baseRT); err != nil {
		t.Fatal(err)
	}
	wantCanonical, err := json.Marshal(baseRT)
	if err != nil {
		t.Fatal(err)
	}
	if string(canonical) != string(wantCanonical) {
		t.Fatalf("wire payload %s\nsingle-node %s", canonical, wantCanonical)
	}
}

// TestFabricHTTPErrors pins the wire error mapping: the sentinel errors
// a Worker keys its control flow off must survive the HTTP round trip.
func TestFabricHTTPErrors(t *testing.T) {
	_, ts := newFabricServer(t, fabric.Config{})
	backend := &HTTPBackend{Base: ts.URL}
	ctx := context.Background()

	// Unknown job: 404 with the sentinel.
	err := backend.Heartbeat(ctx, &fabric.Lease{Job: "nope", Token: "t"}, 0, nil)
	if !errors.Is(err, fabric.ErrUnknownJob) {
		t.Fatalf("unknown job over the wire: %v", err)
	}

	// No pending work: 204 maps to ok == false.
	if _, ok, err := backend.Lease(ctx, "w"); err != nil || ok {
		t.Fatalf("lease with no jobs: ok=%v err=%v", ok, err)
	}

	// Submit a real job, cancel it, and check the revocation code.
	resp, err := http.Post(ts.URL+"/v1/fabric/jobs", "application/json",
		strings.NewReader(`{"id":"j","spec":{"campaign":"yield","seed":1,"params":{"n":128}},"shards":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	ls, ok, err := backend.Lease(ctx, "w")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	resp, err = http.Post(ts.URL+"/v1/fabric/jobs/j/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	if err := backend.Heartbeat(ctx, ls, 0, nil); !errors.Is(err, fabric.ErrLeaseRevoked) {
		t.Fatalf("heartbeat after cancel: %v", err)
	}
	if err := backend.Report(ctx, ls, []byte("acc")); !errors.Is(err, fabric.ErrLeaseRevoked) {
		t.Fatalf("report after cancel: %v", err)
	}

	// Result of a non-done job: 409.
	resp, err = http.Get(ts.URL + "/v1/fabric/jobs/j/result")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %s", resp.Status)
	}

	// Bad submissions: unknown campaign, unshardable campaign.
	for _, body := range []string{
		`{"id":"x","spec":{"campaign":"nope"},"shards":1}`,
		`{"id":"x","spec":{"campaign":"fig4mc"},"shards":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/fabric/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submission %s: %s", body, resp.Status)
		}
	}
}
