package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/testbench"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(context.Background())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func postSpec(t *testing.T, url string, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func waitState(t *testing.T, url, id string, timeout time.Duration, states ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		getJSON(t, url+"/v1/jobs/"+id, &st)
		for _, s := range states {
			if st.State == s {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// GET /v1/campaigns serves the registry catalogue with schemas.
func TestListCampaigns(t *testing.T) {
	_, ts := newTestServer(t)
	var infos []testbench.Info
	getJSON(t, ts.URL+"/v1/campaigns", &infos)
	if len(infos) != len(testbench.Names()) {
		t.Fatalf("%d campaigns served, registry has %d", len(infos), len(testbench.Names()))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		seen[info.Name] = true
	}
	for _, name := range []string{"fig4mc", "yield", "faults", "noisesweep"} {
		if !seen[name] {
			t.Fatalf("campaign %s missing from catalogue", name)
		}
	}
}

// Submitting a spec runs it to completion; the job carries the full
// Result envelope, and its text matches a direct in-process run exactly
// (the over-the-wire bit-identity contract).
func TestSubmitRunAndResult(t *testing.T) {
	_, ts := newTestServer(t)
	resp, st := postSpec(t, ts.URL,
		`{"campaign":"fig4mc","seed":7,"workers":2,"params":{"monitor":2,"dies":25,"cols":11}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %s", resp.Status)
	}
	if st.State != StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	final := waitState(t, ts.URL, st.ID, 30*time.Second, StateDone, StateFailed)
	if final.State != StateDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	direct, err := testbench.Run(context.Background(), testbench.Spec{
		Campaign: "fig4mc", Seed: 7, Workers: 2,
		Params: testbench.Fig4MCParams{Monitor: 2, Dies: 25, Cols: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || final.Result.Text != direct.Text {
		t.Fatal("HTTP job result differs from the direct registry run")
	}
	// The served result must round-trip back to a typed payload.
	data, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	back, err := testbench.DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Payload.(*testbench.Fig4MC); !ok {
		t.Fatalf("decoded payload is %T", back.Payload)
	}
}

// Bad specs are rejected with 400 before any job is created.
func TestSubmitValidation(t *testing.T) {
	s, ts := newTestServer(t)
	for _, body := range []string{
		`{"campaign":"nope"}`,
		`{"campaign":"fig4mc","params":{"diez":3}}`,
		`{"campaign":"fig8","backend":"bogus"}`,
		`{not json`,
	} {
		resp, _ := postSpec(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %s, want 400", body, resp.Status)
		}
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("%d jobs created by invalid specs", n)
	}
}

// Cancelling through the HTTP endpoint aborts a long campaign promptly.
func TestCancelEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, st := postSpec(t, ts.URL,
		`{"campaign":"yield","seed":3,"chunk":8,"params":{"n":1000000,"component_sigma":0.02,"tol":0.05,"threshold":0.03}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %s", resp.Status)
	}
	// Let it make some progress first, so the cancel is genuinely
	// mid-flight. The small chunk makes the streamed campaign tick early
	// instead of after its first 4096-trial chunk.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		if cur.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress in 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cresp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %s", cresp.Status)
	}
	final := waitState(t, ts.URL, st.ID, 10*time.Second, StateCancelled, StateDone, StateFailed)
	if final.State != StateCancelled {
		t.Fatalf("job ended %q, want cancelled", final.State)
	}
	if final.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
}

// The SSE stream emits status frames and terminates with the job.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t)
	_, st := postSpec(t, ts.URL,
		`{"campaign":"fig4mc","seed":7,"params":{"dies":30,"cols":9}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var lastFrame []byte
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		if bytes.HasPrefix(line, []byte("data: ")) {
			lastFrame = append([]byte(nil), bytes.TrimPrefix(line, []byte("data: "))...)
		}
	}
	if lastFrame == nil {
		t.Fatal("no SSE frames received")
	}
	var final JobStatus
	if err := json.Unmarshal(lastFrame, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final streamed state %q: %s", final.State, final.Error)
	}
	if final.Progress != (Progress{Done: 30, Total: 30}) {
		t.Fatalf("final streamed progress %+v", final.Progress)
	}
}

// GET /v1/jobs lists jobs newest first; unknown jobs 404.
func TestJobsListingAndNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	_, first := postSpec(t, ts.URL, `{"campaign":"table1"}`)
	_, second := postSpec(t, ts.URL, `{"campaign":"table1"}`)
	waitState(t, ts.URL, first.ID, 10*time.Second, StateDone)
	waitState(t, ts.URL, second.ID, 10*time.Second, StateDone)
	var jobs []JobStatus
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs) != 2 || jobs[0].ID != second.ID || jobs[1].ID != first.ID {
		t.Fatalf("job listing wrong: %+v", jobs)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %s", resp.Status)
	}
}

// Closing the server cancels in-flight jobs (graceful shutdown).
func TestCloseCancelsJobs(t *testing.T) {
	s := New(context.Background())
	st, err := s.Submit(testbench.Spec{
		Campaign: "yield",
		Params:   map[string]any{"n": 1000000, "threshold": 0.03},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	final, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job lost")
	}
	if final.State != StateCancelled && final.State != StateDone {
		t.Fatalf("job state after Close: %q", final.State)
	}
}

// A production-scale submission: a 1,000,000-trial yield spec is
// accepted, streams monotone chunk-granular progress over SSE while the
// reduction runs, and cancels cleanly through the API — the server never
// materializes per-trial state, so the spec's size costs nothing.
func TestMillionTrialSpecStreamsChunkProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("live campaign stream skipped in -short mode")
	}
	_, ts := newTestServer(t)
	resp, st := postSpec(t, ts.URL,
		`{"campaign":"yield","seed":3,"chunk":16,"params":{"n":1000000,"component_sigma":0.02,"tol":0.05,"threshold":0.03}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("1M-trial spec rejected: %s", resp.Status)
	}
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	scanner := bufio.NewScanner(evResp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	frames, lastDone := 0, 0
	cancelled := false
	var final JobStatus
	for scanner.Scan() {
		line := scanner.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var js JobStatus
		if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &js); err != nil {
			t.Fatal(err)
		}
		final = js
		if js.Progress.Total != 0 && js.Progress.Total != 1000000 {
			t.Fatalf("progress total = %d, want 1000000", js.Progress.Total)
		}
		if js.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d after %d", js.Progress.Done, lastDone)
		}
		lastDone = js.Progress.Done
		frames++
		// Once progress is visibly flowing, cancel through the API.
		if !cancelled && js.Progress.Done >= 32 {
			cancelled = true
			cResp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			cResp.Body.Close()
		}
	}
	if !cancelled {
		t.Fatalf("never saw enough progress to cancel (last frame %+v)", final)
	}
	if final.State != StateCancelled {
		t.Fatalf("final state %q, want cancelled", final.State)
	}
	if final.Progress.Done >= 1000000 {
		t.Fatal("cancelled job claims full completion")
	}
}
