//go:build race

package campaign

// raceEnabled lets allocation-pin tests skip under the race detector,
// whose instrumentation distorts allocation accounting.
const raceEnabled = true
