package campaign

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// floatSumReducer is deliberately non-associative in the exact sense
// (floating-point addition), so any regrouping of folds or merges shows
// up as a bit difference.
func floatSumReducer() Reducer[float64, float64] {
	return Reducer[float64, float64]{
		Fold:  func(acc float64, _ int, v float64) float64 { return acc + v },
		Merge: func(into, next float64) float64 { return into + next },
	}
}

// floatTrial gives trial i an irrational-ish value so sums are
// order-sensitive.
func floatTrial(i int) (float64, error) {
	return math.Sqrt(float64(i) + 0.5), nil
}

func TestReduceSpanFullRangeMatchesReduce(t *testing.T) {
	ctx := context.Background()
	const n = 10_000
	for _, workers := range []int{1, 4, 8} {
		e := Engine{Workers: workers, Chunk: 512}
		want, err := Reduce(ctx, e, n, floatSumReducer(), floatTrial)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReduceSpan(ctx, e, Span{0, n}, nil, nil, floatSumReducer(), floatTrial)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: ReduceSpan [0,%d) = %x, Reduce = %x", workers, n, got, want)
		}
	}
}

// TestReduceSpanResumeBitIdentical is the determinism contract of the
// fabric: a run checkpointed at a chunk boundary and resumed from the
// restored accumulator lands on the same bits as an uninterrupted run,
// at any worker count — even for a non-associative reducer, because the
// resumed merge chain is the same left-to-right chain.
func TestReduceSpanResumeBitIdentical(t *testing.T) {
	ctx := context.Background()
	const n = 20_000
	const chunk = 512
	full, err := Reduce(ctx, Engine{Workers: 4, Chunk: chunk}, n, floatSumReducer(), floatTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		e := Engine{Workers: workers, Chunk: chunk}
		for _, cut := range []int{chunk, 7 * chunk, 39 * chunk} {
			prefix, err := ReduceSpan(ctx, e, Span{0, cut}, nil, nil, floatSumReducer(), floatTrial)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := ReduceSpan(ctx, e, Span{cut, n}, &prefix, nil, floatSumReducer(), floatTrial)
			if err != nil {
				t.Fatal(err)
			}
			if resumed != full {
				t.Fatalf("workers=%d cut=%d: resumed = %x, uninterrupted = %x", workers, cut, resumed, full)
			}
		}
	}
}

// TestReduceSpanShardMergeBitIdentical covers the sharding half: for an
// exactly associative reducer (integer counts), chunk-aligned shard
// accumulators merged in shard order equal the single-range run.
func TestReduceSpanShardMergeBitIdentical(t *testing.T) {
	ctx := context.Background()
	const n = 10_000
	const chunk = 256
	red := Reducer[int, int]{
		Fold:  func(acc, i, v int) int { return acc + v },
		Merge: func(into, next int) int { return into + next },
	}
	trial := func(i int) (int, error) { return i % 7, nil }
	want, err := Reduce(ctx, Engine{Workers: 4, Chunk: chunk}, n, red, trial)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 4 * chunk, 5 * chunk, 21 * chunk, n}
	for _, workers := range []int{1, 4, 8} {
		e := Engine{Workers: workers, Chunk: chunk}
		got := 0
		for s := 0; s+1 < len(cuts); s++ {
			acc, err := ReduceSpan(ctx, e, Span{cuts[s], cuts[s+1]}, nil, nil, red, trial)
			if err != nil {
				t.Fatal(err)
			}
			got = red.Merge(got, acc)
		}
		if got != want {
			t.Fatalf("workers=%d: sharded merge = %d, single-range = %d", workers, got, want)
		}
	}
}

// TestReduceSpanCheckpointCadence pins where checkpoints land: on whole
// chunk boundaries at the configured cadence, never after the final
// chunk, each carrying the accumulator of exactly the trials below it —
// and each restorable into a bit-identical resumed run.
func TestReduceSpanCheckpointCadence(t *testing.T) {
	ctx := context.Background()
	const n = 5000
	const chunk = 256
	for _, workers := range []int{1, 4} {
		e := Engine{Workers: workers, Chunk: chunk, Checkpoint: 3 * chunk}
		type ck struct {
			acc     float64
			through int
		}
		var cks []ck
		sink := func(acc float64, through int) error {
			cks = append(cks, ck{acc, through})
			return nil
		}
		full, err := ReduceSpan(ctx, e, Span{0, n}, nil, sink, floatSumReducer(), floatTrial)
		if err != nil {
			t.Fatal(err)
		}
		// 20 chunks at cadence 3: checkpoints after chunks 2, 5, 8, 11,
		// 14, 17 (chunk 19 is final and never checkpoints).
		wantThrough := []int{3 * chunk, 6 * chunk, 9 * chunk, 12 * chunk, 15 * chunk, 18 * chunk}
		if len(cks) != len(wantThrough) {
			t.Fatalf("workers=%d: %d checkpoints, want %d", workers, len(cks), len(wantThrough))
		}
		for i, c := range cks {
			if c.through != wantThrough[i] {
				t.Fatalf("workers=%d: checkpoint %d at trial %d, want %d", workers, i, c.through, wantThrough[i])
			}
			prefix, err := ReduceSpan(ctx, Engine{Workers: 1, Chunk: chunk}, Span{0, c.through}, nil, nil, floatSumReducer(), floatTrial)
			if err != nil {
				t.Fatal(err)
			}
			if prefix != c.acc {
				t.Fatalf("workers=%d: checkpoint %d acc %x, serial prefix %x", workers, i, c.acc, prefix)
			}
			resumed, err := ReduceSpan(ctx, e, Span{c.through, n}, &c.acc, nil, floatSumReducer(), floatTrial)
			if err != nil {
				t.Fatal(err)
			}
			if resumed != full {
				t.Fatalf("workers=%d: resume from checkpoint %d = %x, full = %x", workers, i, resumed, full)
			}
		}
	}
}

// TestReduceSpanCheckpointError pins that a failing checkpoint sink
// aborts the reduction with its error — durability failures surface.
func TestReduceSpanCheckpointError(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("disk full")
	for _, workers := range []int{1, 4} {
		e := Engine{Workers: workers, Chunk: 64, Checkpoint: 64}
		calls := 0
		sink := func(acc float64, through int) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		}
		_, err := ReduceSpan(ctx, e, Span{0, 10_000}, nil, sink, floatSumReducer(), floatTrial)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestReduceSpanValidation(t *testing.T) {
	ctx := context.Background()
	red := floatSumReducer()
	if _, err := ReduceSpan(ctx, Engine{}, Span{-1, 5}, nil, nil, red, floatTrial); err == nil {
		t.Fatal("negative span accepted")
	}
	if _, err := ReduceSpan(ctx, Engine{}, Span{5, 4}, nil, nil, red, floatTrial); err == nil {
		t.Fatal("inverted span accepted")
	}
	// An empty span returns the restored state unchanged.
	init := 42.5
	got, err := ReduceSpan(ctx, Engine{}, Span{7, 7}, &init, nil, red, floatTrial)
	if err != nil || got != init {
		t.Fatalf("empty span = %v, %v; want %v, nil", got, err, init)
	}
	// A restored accumulator requires Merge even for a single chunk.
	noMerge := Reducer[float64, float64]{Fold: red.Fold}
	if _, err := ReduceSpan(ctx, Engine{}, Span{0, 10}, &init, nil, noMerge, floatTrial); err == nil {
		t.Fatal("init without Merge accepted")
	}
}

// TestReduceSpanCancellation pins that mid-span cancellation returns the
// context error and leaks no goroutines past the drain.
func TestReduceSpanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := Engine{Workers: 4, Chunk: 16}
	var n atomic.Int64
	_, err := ReduceSpan(ctx, e, Span{0, 100_000}, nil, nil,
		Reducer[int, int]{
			Fold:  func(acc, i, v int) int { return acc + v },
			Merge: func(into, next int) int { return into + next },
		},
		func(i int) (int, error) {
			if n.Add(1) == 100 {
				cancel()
			}
			return 1, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
}
