// Package campaign is the shared parallel Monte-Carlo trial engine. Every
// statistical study in the repository — the Fig. 4 process-variation
// envelope, the noise detection and resolution sweeps, the component
// fault campaign, the production yield simulation, the Fig. 8 deviation
// sweep — is a batch of independent trials, and this package runs such a
// batch across a bounded worker pool while keeping the results
// bit-identical at any worker count.
//
// Determinism rests on three rules:
//
//   - each trial draws randomness only from its own substream, derived
//     as a pure function of (root seed, trial index) via Engine.Stream
//     (or pre-derived serially by the caller before fan-out);
//   - results land in an indexed slot, so output order is the trial
//     order regardless of completion order;
//   - the first error is reported by trial index, not by wall-clock
//     arrival.
package campaign

import (
	"runtime"
	"sync"

	"repro/internal/rng"
)

// Engine configures a campaign run. The zero value is ready to use: all
// CPUs and root seed 0.
type Engine struct {
	// Workers bounds the worker pool; <= 0 selects runtime.NumCPU().
	// The pool never exceeds the trial count. Results do not depend on
	// this value — it only sets the parallelism.
	Workers int
	// Seed is the root seed for Stream. Trials that pre-derive their own
	// streams (to stay bit-compatible with an older serial seeding
	// order) never consult it.
	Seed uint64
}

// Stream returns trial i's private random substream — a pure function of
// (Seed, i), so a trial may derive it concurrently from inside the pool.
// Trials that need randomness call this; the engine itself never draws.
func (e Engine) Stream(i int) *rng.Stream { return rng.NewSub(e.Seed, uint64(i)) }

// poolSize resolves the effective worker count for n trials.
func (e Engine) poolSize(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes n independent trials across the pool and returns their
// results in trial order. A trial needing randomness derives its private
// substream with e.Stream(i); it must not touch state shared with other
// trials. On failure the error of the lowest-index failing trial is
// returned.
func Run[T any](e Engine, n int, trial func(i int) (T, error)) ([]T, error) {
	return RunScratch(e, n,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return trial(i) })
}

// RunScratch is Run with per-worker scratch state: newScratch is called
// once per worker and its value is threaded into every trial that worker
// executes. Use it for reusable buffers (capture scratch, device slices)
// so trial fan-out does not multiply allocations. Scratch must not affect
// results — a trial reading stale scratch contents would break the
// worker-count independence the engine guarantees.
func RunScratch[T, S any](e Engine, n int, newScratch func() S, trial func(i int, scratch S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := e.poolSize(n)
	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			out[i], errs[i] = trial(i, scratch)
		}
		return collect(out, errs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for i := range next {
				out[i], errs[i] = trial(i, scratch)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return collect(out, errs)
}

// collect returns the results, or the lowest-index trial error.
func collect[T any](out []T, errs []error) ([]T, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
