package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Engine configures a campaign run. The zero value is ready to use: all
// CPUs and root seed 0.
type Engine struct {
	// Workers bounds the worker pool; <= 0 selects runtime.NumCPU().
	// The pool never exceeds the trial count. Results do not depend on
	// this value — it only sets the parallelism.
	Workers int
	// Seed is the root seed for Stream. Trials that pre-derive their own
	// streams (to stay bit-compatible with an older serial seeding
	// order) never consult it.
	Seed uint64
	// Progress, when non-nil, is invoked after every completed trial with
	// the number of trials finished so far and the total trial count
	// (Reduce ticks it once per completed chunk instead, with the
	// cumulative trial count). It may be called concurrently from several
	// workers and must not block; the reported count never decreases and
	// it observes the run but never affects its results.
	Progress func(done, total int)
	// Chunk is the number of trials one reduction chunk covers (Reduce
	// only); <= 0 selects DefaultChunk. The chunk size is part of the
	// result contract of a non-associative reduction: at a fixed chunk
	// size the merged accumulator is bit-identical at any worker count,
	// while different chunks may group floating-point folds
	// differently. Run ignores it.
	Chunk int
	// Checkpoint is the trial count between checkpoint callbacks of a
	// span reduction (ReduceSpanScratch with a CheckpointFunc); <= 0
	// selects DefaultCheckpoint. It is rounded down to whole chunks
	// (minimum one), so every checkpoint lands on a chunk boundary and a
	// resumed run regroups nothing. Checkpointing observes a run but
	// never affects its result, so the cadence — unlike Chunk — is not
	// part of the reproducibility contract.
	Checkpoint int
	// Meter, when non-nil, observes the streaming reduction engine:
	// pool size at ReduceStart, chunk fold start/completion events (see
	// Meter). Like Progress it is called concurrently, must not block,
	// and observes a run without affecting its results. Run/RunScratch
	// ignore it — per-trial observation there is Progress.
	Meter Meter
}

// meter resolves the configured Meter, defaulting to a no-op.
func (e Engine) meter() Meter {
	if e.Meter != nil {
		return e.Meter
	}
	return nopMeter{}
}

// Stream returns trial i's private random substream — a pure function of
// (Seed, i), so a trial may derive it concurrently from inside the pool.
// Trials that need randomness call this; the engine itself never draws.
func (e Engine) Stream(i int) *rng.Stream { return rng.NewSub(e.Seed, uint64(i)) }

// poolSize resolves the effective worker count for n trials.
func (e Engine) poolSize(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes n independent trials across the pool and returns their
// results in trial order. A trial needing randomness derives its private
// substream with e.Stream(i); it must not touch state shared with other
// trials. On failure the error of the lowest-index failing trial is
// returned; when ctx is cancelled mid-run, no further trials start and
// ctx.Err() is returned once the in-flight trials drain.
func Run[T any](ctx context.Context, e Engine, n int, trial func(i int) (T, error)) ([]T, error) {
	return RunScratch(ctx, e, n,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return trial(i) })
}

// RunScratch is Run with per-worker scratch state: newScratch is called
// once per worker and its value is threaded into every trial that worker
// executes. Use it for reusable buffers (capture scratch, device slices)
// so trial fan-out does not multiply allocations. Scratch must not affect
// results — a trial reading stale scratch contents would break the
// worker-count independence the engine guarantees.
func RunScratch[T, S any](ctx context.Context, e Engine, n int, newScratch func() S, trial func(i int, scratch S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]T, n)
	errs := make([]error, n)
	var done atomic.Int64
	tick := func() {
		d := done.Add(1)
		if e.Progress != nil {
			e.Progress(int(d), n)
		}
	}
	workers := e.poolSize(n)
	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i], errs[i] = trial(i, scratch)
			tick()
		}
		return collect(ctx, out, errs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for i := range next {
				// A cancelled context stops the work, not the drain: the
				// feeder may already have queued this index, so skip the
				// trial but keep consuming until the channel closes.
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = trial(i, scratch)
				tick()
			}
		}()
	}
	cancelled := false
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
	}
	close(next)
	wg.Wait()
	if cancelled {
		return nil, ctx.Err()
	}
	return collect(ctx, out, errs)
}

// collect returns the results, or the lowest-index trial error; a context
// cancelled while the last trials were draining wins over partial output.
func collect[T any](ctx context.Context, out []T, errs []error) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
