package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultCheckpoint is the trial count between checkpoint callbacks when
// Engine.Checkpoint is unset. Large enough that serializing and
// persisting the accumulator is noise against a checkpoint interval's
// worth of trial work (the BenchmarkCheckpointOverhead pin holds the
// default under 5%); small enough that a killed multi-hour campaign
// loses minutes, not hours.
const DefaultCheckpoint = 65536

// Span is a contiguous trial index range [Lo, Hi) of a campaign's trial
// space. Chunk boundaries stay aligned to trial 0 regardless of Lo, so a
// span reduction folds exactly the chunks the full-range reduction
// would: resuming at a checkpoint (Lo on a chunk boundary) or sharding a
// campaign into chunk-aligned spans regroups nothing.
type Span struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of trials the span covers.
func (s Span) Len() int { return s.Hi - s.Lo }

// CheckpointFunc receives the merged accumulator covering every span
// trial below through (a chunk boundary) — the hook durable reductions
// persist their state with. It runs on the merge path: it may marshal
// and write acc but must not mutate or retain it, and a non-nil error
// aborts the reduction (a checkpoint that cannot be persisted is a
// failure, not a warning — the errdrop invariant applied to durability).
type CheckpointFunc[A any] func(acc A, through int) error

// CheckpointReducer couples a streaming Reducer with a binary codec over
// its accumulator state, making the reduction durable: the accumulator
// can be checkpointed mid-run and restored bit-exactly (Unmarshal ∘
// Marshal = identity), so a resumed reduction continues the same
// left-to-right merge chain and lands on the same bits as an
// uninterrupted one. Sharding additionally requires Merge to be exactly
// associative (integer counts, bit-exact min/max, ordered concatenation
// — the accumulator shapes this repository's campaigns use), because
// per-shard accumulators merge as (s0 ⊕ s1) ⊕ s2 rather than one chunk
// at a time.
type CheckpointReducer[T, A any] struct {
	Reducer[T, A]
	// Marshal serializes an accumulator; the encoding must be canonical
	// (equal state, equal bytes) so resumed results can be pinned.
	Marshal func(acc A) ([]byte, error)
	// Unmarshal restores an accumulator bit-exactly from Marshal's bytes,
	// rejecting malformed input with an error.
	Unmarshal func(data []byte) (A, error)
}

// ReduceSpan is ReduceSpanScratch without per-worker scratch state.
func ReduceSpan[T, A any](ctx context.Context, e Engine, span Span, init *A, ckpt CheckpointFunc[A], r Reducer[T, A], trial func(i int) (T, error)) (A, error) {
	return ReduceSpanScratch(ctx, e, span, init, ckpt, r,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return trial(i) })
}

// ReduceSpanScratch executes the trials of one span through the
// streaming reduction engine — the durable, shardable generalization of
// ReduceScratch, which is the span [0, n) with no restored state.
//
// init, when non-nil, is the accumulator covering every trial below
// span.Lo (restored from a checkpoint); each of the span's chunks merges
// into it in ascending chunk order, continuing the exact left-to-right
// merge chain of an uninterrupted run. ckpt, when non-nil, is invoked on
// the merge path every Engine.Checkpoint trials (rounded down to whole
// chunks, default DefaultCheckpoint) with the merged prefix and the
// first uncovered trial index — always a chunk boundary, so resuming at
// it reproduces the remaining fold bit for bit.
//
// Error, cancellation and progress semantics match ReduceScratch, with
// progress counted within the span; a checkpoint error aborts the run
// like a trial error at its boundary.
func ReduceSpanScratch[T, A, S any](ctx context.Context, e Engine, span Span, init *A, ckpt CheckpointFunc[A], r Reducer[T, A], newScratch func() S, trial func(i int, scratch S) (T, error)) (A, error) {
	var zero A
	newAcc := r.New
	if newAcc == nil {
		newAcc = func() A { var a A; return a }
	}
	if r.Fold == nil {
		return zero, errors.New("campaign: Reduce needs a Fold function")
	}
	if span.Lo < 0 || span.Hi < span.Lo {
		return zero, fmt.Errorf("campaign: bad span [%d, %d)", span.Lo, span.Hi)
	}
	if span.Len() == 0 {
		if init != nil {
			return *init, nil
		}
		return newAcc(), nil
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	chunk := e.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	// Chunk indices are global — aligned to trial 0, not to span.Lo — so
	// the span folds exactly the (partial) chunks a full-range run would.
	c0 := span.Lo / chunk
	cN := (span.Hi + chunk - 1) / chunk // one past the last chunk index
	nChunks := cN - c0
	if (nChunks > 1 || init != nil) && r.Merge == nil {
		return zero, errors.New("campaign: Reduce spanning multiple chunks needs a Merge function")
	}
	ckptEvery := 0 // in chunks; 0 disables
	if ckpt != nil {
		cadence := e.Checkpoint
		if cadence <= 0 {
			cadence = DefaultCheckpoint
		}
		ckptEvery = cadence / chunk
		if ckptEvery < 1 {
			ckptEvery = 1
		}
	}
	n := span.Len()
	// Progress is chunk-granular and strictly monotone: ticks are
	// serialized under a mutex and delivered only when they advance the
	// high-water mark, so an observer never sees the count decrease even
	// when workers retire chunks out of order. One lock per chunk is
	// noise next to a chunk's worth of trial work.
	var done atomic.Int64
	var progressMu sync.Mutex
	reported := 0
	tick := func(trials int) {
		if trials == 0 {
			return
		}
		d := int(done.Add(int64(trials)))
		if e.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		if d > reported {
			reported = d
			e.Progress(d, n)
		}
	}
	// runChunk folds chunk c's in-span trials in ascending index order
	// into a fresh accumulator. On a trial error (or mid-chunk
	// cancellation) it stops at that trial; the index of the failing
	// trial is implicit in the error being the first of the chunk.
	// The meter brackets the fold — ChunkDone fires on every exit path
	// with the folded count, so a metered observer's start/done
	// accounting always closes.
	meter := e.meter()
	runChunk := func(c int, scratch S) (A, int, error) {
		lo := max(c*chunk, span.Lo)
		hi := min((c+1)*chunk, span.Hi)
		acc := newAcc()
		meter.ChunkStart(c)
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				meter.ChunkDone(c, i-lo)
				tick(i - lo)
				return acc, i - lo, err
			}
			v, err := trial(i, scratch)
			if err != nil {
				meter.ChunkDone(c, i-lo)
				tick(i - lo)
				return acc, i - lo, err
			}
			acc = r.Fold(acc, i, v)
		}
		meter.ChunkDone(c, hi-lo)
		tick(hi - lo)
		return acc, hi - lo, nil
	}
	// checkpointAt invokes ckpt after chunk c merged, when c closes a
	// cadence interval and is not the final chunk (the caller gets the
	// final accumulator directly). c+1 < cN, so the boundary is whole.
	checkpointAt := func(c int, acc A) error {
		if ckptEvery == 0 || c+1 >= cN || (c-c0+1)%ckptEvery != 0 {
			return nil
		}
		return ckpt(acc, (c+1)*chunk)
	}

	workers := e.poolSize(nChunks)
	meter.ReduceStart(workers, n)
	if workers == 1 {
		scratch := newScratch()
		var global A
		hasGlobal := false
		if init != nil {
			global, hasGlobal = *init, true
		}
		for c := c0; c < cN; c++ {
			acc, _, err := runChunk(c, scratch)
			if err != nil {
				return zero, err
			}
			if hasGlobal {
				global = r.Merge(global, acc)
			} else {
				global, hasGlobal = acc, true
			}
			if err := checkpointAt(c, global); err != nil {
				return zero, err
			}
		}
		return global, nil
	}

	// Parallel path. Chunks flow feeder -> workers -> merger; the merger
	// folds them into the global accumulator in ascending chunk order. A
	// token window bounds dispatched-but-unmerged chunks to 2*workers, so
	// a slow chunk 0 cannot let faster workers pile up O(nChunks)
	// accumulators — this is what keeps memory O(workers), not O(trials).
	type chunkOut struct {
		c   int
		acc A
		err error
	}
	window := 2 * workers
	next := make(chan int)
	results := make(chan chunkOut, window) // never blocks a worker: outstanding <= window
	tokens := make(chan struct{}, window)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for c := range next {
				// A cancelled context stops the work, not the drain: skip
				// the chunk but keep consuming until the channel closes,
				// and still report it so the merger's accounting closes.
				if err := ctx.Err(); err != nil {
					results <- chunkOut{c: c, err: err}
					continue
				}
				acc, _, err := runChunk(c, scratch)
				if err != nil {
					// Real trial errors stop the feeder early; ctx errors
					// are already handled by its Done branch.
					failed.Store(true)
				}
				results <- chunkOut{c: c, acc: acc, err: err}
			}
		}()
	}

	var (
		global     A
		hasGlobal  bool
		firstErr   error
		mergerDone = make(chan struct{})
	)
	if init != nil {
		global, hasGlobal = *init, true
	}
	go func() {
		defer close(mergerDone)
		pending := make(map[int]chunkOut, window)
		nextMerge := c0
		for out := range results {
			pending[out.c] = out
			for {
				o, ok := pending[nextMerge]
				if !ok {
					break
				}
				delete(pending, nextMerge)
				<-tokens // chunk retired: let the feeder dispatch another
				if firstErr == nil {
					switch {
					case o.err != nil:
						// Ascending-order scan: the first error seen here is
						// the lowest-index failing trial's.
						firstErr = o.err
					case hasGlobal:
						global = r.Merge(global, o.acc)
					default:
						global, hasGlobal = o.acc, true
					}
					if firstErr == nil {
						if err := checkpointAt(nextMerge, global); err != nil {
							// A checkpoint that cannot be persisted fails the
							// run like a trial error at its boundary; stop the
							// feeder so no further chunks start.
							firstErr = err
							failed.Store(true)
						}
					}
				}
				nextMerge++
			}
		}
	}()

	cancelled := false
feed:
	for c := c0; c < cN; c++ {
		if failed.Load() {
			// Chunks are fed in ascending order, so everything that could
			// hold a lower-index error is already in flight.
			break
		}
		select {
		case tokens <- struct{}{}:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
		select {
		case next <- c:
		case <-ctx.Done():
			cancelled = true
			// Unwind the token the undispatched chunk held so the merger's
			// token accounting stays balanced.
			<-tokens
			break feed
		}
	}
	close(next)
	wg.Wait()
	close(results)
	<-mergerDone
	if cancelled || ctx.Err() != nil {
		return zero, ctx.Err()
	}
	if firstErr != nil {
		return zero, firstErr
	}
	return global, nil
}
