package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// Results must be identical at any worker count and land in trial order.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	e := Engine{Workers: 1, Seed: 42}
	trial := func(i int) (float64, error) {
		return float64(i) + e.Stream(i).Float64(), nil
	}
	ref, err := Run(e, 64, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, 0} {
		got, err := Run(Engine{Workers: w, Seed: 42}, 64, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: trial %d = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
	// Slot order is trial order.
	for i := 1; i < len(ref); i++ {
		if int(ref[i]) != i {
			t.Fatalf("slot %d holds trial %d", i, int(ref[i]))
		}
	}
}

// Trial substreams are pure functions of (seed, index): independent of
// each other and stable run to run.
func TestEngineStreams(t *testing.T) {
	e := Engine{Seed: 7}
	a := e.Stream(3).Uint64()
	b := e.Stream(3).Uint64()
	if a != b {
		t.Fatalf("stream 3 not reproducible: %v vs %v", a, b)
	}
	if e.Stream(3).Uint64() == e.Stream(4).Uint64() {
		t.Fatal("adjacent substreams coincide")
	}
	if e.Stream(0).Uint64() == (Engine{Seed: 8}).Stream(0).Uint64() {
		t.Fatal("distinct seeds give identical substreams")
	}
}

// The lowest-index error wins, regardless of completion order.
func TestFirstErrorByTrialIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		_, err := Run(Engine{Workers: w}, 32, func(i int) (int, error) {
			if i%3 == 2 { // trials 2, 5, 8, ... fail
				return 0, fmt.Errorf("trial %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error lost: %v", w, err)
		}
		if got := err.Error(); got != "trial 2: boom" {
			t.Fatalf("workers=%d: first error is %q, want trial 2", w, got)
		}
	}
}

// Per-worker scratch is allocated once per worker and reused.
func TestRunScratchReuse(t *testing.T) {
	workers := 4
	made := make(chan struct{}, 128)
	_, err := RunScratch(Engine{Workers: workers}, 100,
		func() []float64 { made <- struct{}{}; return make([]float64, 8) },
		func(i int, scratch []float64) (int, error) {
			scratch[0] = float64(i) // scribble: next trial must not care
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(made); n > workers {
		t.Fatalf("%d scratch allocations for %d workers", n, workers)
	}
}

func TestEmptyAndSingleTrial(t *testing.T) {
	out, err := Run(Engine{}, 0, func(i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("empty campaign: %v, %v", out, err)
	}
	out, err = Run(Engine{Workers: runtime.NumCPU()}, 1, func(i int) (int, error) { return 99, nil })
	if err != nil || len(out) != 1 || out[0] != 99 {
		t.Fatalf("single trial: %v, %v", out, err)
	}
}
