package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Results must be identical at any worker count and land in trial order.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	e := Engine{Workers: 1, Seed: 42}
	trial := func(i int) (float64, error) {
		return float64(i) + e.Stream(i).Float64(), nil
	}
	ref, err := Run(ctx, e, 64, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, 0} {
		got, err := Run(ctx, Engine{Workers: w, Seed: 42}, 64, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: trial %d = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
	// Slot order is trial order.
	for i := 1; i < len(ref); i++ {
		if int(ref[i]) != i {
			t.Fatalf("slot %d holds trial %d", i, int(ref[i]))
		}
	}
}

// Trial substreams are pure functions of (seed, index): independent of
// each other and stable run to run.
func TestEngineStreams(t *testing.T) {
	e := Engine{Seed: 7}
	a := e.Stream(3).Uint64()
	b := e.Stream(3).Uint64()
	if a != b {
		t.Fatalf("stream 3 not reproducible: %v vs %v", a, b)
	}
	if e.Stream(3).Uint64() == e.Stream(4).Uint64() {
		t.Fatal("adjacent substreams coincide")
	}
	if e.Stream(0).Uint64() == (Engine{Seed: 8}).Stream(0).Uint64() {
		t.Fatal("distinct seeds give identical substreams")
	}
}

// The lowest-index error wins, regardless of completion order.
func TestFirstErrorByTrialIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		_, err := Run(context.Background(), Engine{Workers: w}, 32, func(i int) (int, error) {
			if i%3 == 2 { // trials 2, 5, 8, ... fail
				return 0, fmt.Errorf("trial %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error lost: %v", w, err)
		}
		if got := err.Error(); got != "trial 2: boom" {
			t.Fatalf("workers=%d: first error is %q, want trial 2", w, got)
		}
	}
}

// Per-worker scratch is allocated once per worker and reused.
func TestRunScratchReuse(t *testing.T) {
	workers := 4
	made := make(chan struct{}, 128)
	_, err := RunScratch(context.Background(), Engine{Workers: workers}, 100,
		func() []float64 { made <- struct{}{}; return make([]float64, 8) },
		func(i int, scratch []float64) (int, error) {
			scratch[0] = float64(i) // scribble: next trial must not care
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(made); n > workers {
		t.Fatalf("%d scratch allocations for %d workers", n, workers)
	}
}

func TestEmptyAndSingleTrial(t *testing.T) {
	ctx := context.Background()
	out, err := Run(ctx, Engine{}, 0, func(i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("empty campaign: %v, %v", out, err)
	}
	out, err = Run(ctx, Engine{Workers: runtime.NumCPU()}, 1, func(i int) (int, error) { return 99, nil })
	if err != nil || len(out) != 1 || out[0] != 99 {
		t.Fatalf("single trial: %v, %v", out, err)
	}
}

// A context cancelled before the run starts aborts immediately.
func TestRunAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	_, err := Run(ctx, Engine{Workers: 4}, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d trials ran under a cancelled context", n)
	}
}

// Cancelling mid-flight returns context.Canceled within roughly one
// trial's latency and leaks no goroutines — the worker pool drains fully.
func TestRunCancelMidFlightPromptAndLeakFree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		started := make(chan struct{})
		type result struct {
			err error
		}
		doneCh := make(chan result, 1)
		go func() {
			_, err := Run(ctx, Engine{Workers: workers, Progress: func(done, total int) {
				once.Do(func() { close(started) })
			}}, 10_000, func(i int) (int, error) {
				time.Sleep(200 * time.Microsecond) // one trial's latency
				return i, nil
			})
			doneCh <- result{err: err}
		}()
		<-started
		cancel()
		select {
		case r := <-doneCh:
			if !errors.Is(r.err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: cancellation not honoured within 5s", workers)
		}
		// The pool must have drained: allow the runtime a moment to retire
		// the worker goroutines, then require the count back near baseline.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Fatalf("workers=%d: %d goroutines after cancel, started with %d", workers, got, before)
		}
	}
}

// Progress reports every completed trial exactly once and ends at (n, n).
func TestProgressReporting(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var calls atomic.Int64
		var sawFinal atomic.Bool
		n := 50
		_, err := Run(context.Background(), Engine{Workers: workers, Progress: func(done, total int) {
			calls.Add(1)
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done == n {
				sawFinal.Store(true)
			}
		}}, n, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != int64(n) {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, got, n)
		}
		if !sawFinal.Load() {
			t.Fatalf("workers=%d: final (n, n) progress call missing", workers)
		}
	}
}
