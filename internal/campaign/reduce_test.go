package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sumReducer accumulates float64 trial results — deliberately
// non-associative in the exact sense, so chunk grouping shows up in the
// bits if the merge order ever drifts.
func sumReducer() Reducer[float64, float64] {
	return Reducer[float64, float64]{
		Fold:  func(acc float64, _ int, v float64) float64 { return acc + v },
		Merge: func(into, next float64) float64 { return into + next },
	}
}

// Reduce must agree bit-for-bit with folding Run's result slice in trial
// order at the same chunk size, at any worker count.
func TestReduceMatchesRunFold(t *testing.T) {
	ctx := context.Background()
	const n = 1000
	trial := func(i int) (float64, error) {
		return (Engine{Seed: 5}).Stream(i).Float64() - 0.5, nil
	}
	out, err := Run(ctx, Engine{Workers: 1, Seed: 5}, n, trial)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: fold the slice with the same chunk grouping.
	const chunk = 64
	want := 0.0
	for lo := 0; lo < n; lo += chunk {
		part := 0.0
		for i := lo; i < min(lo+chunk, n); i++ {
			part += out[i]
		}
		want += part
	}
	for _, w := range []int{1, 2, 8, 0} {
		got, err := Reduce(ctx, Engine{Workers: w, Seed: 5, Chunk: chunk}, n, sumReducer(), trial)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: sum = %v, want %v", w, got, want)
		}
	}
}

// Ordered appends: the merged accumulator must list every trial in index
// order at any worker count — the contract the fault table and the MC
// envelope rely on.
func TestReduceMergeOrderIsTrialOrder(t *testing.T) {
	ctx := context.Background()
	red := Reducer[int, []int]{
		Fold:  func(acc []int, _ int, v int) []int { return append(acc, v) },
		Merge: func(into, next []int) []int { return append(into, next...) },
	}
	for _, w := range []int{1, 3, 16} {
		got, err := Reduce(ctx, Engine{Workers: w, Chunk: 7}, 200, red,
			func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 200 {
			t.Fatalf("workers=%d: %d items", w, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: slot %d holds trial %d", w, i, v)
			}
		}
	}
}

// The lowest-index trial error wins, regardless of worker count and of
// which chunk finishes first, and later chunks are not started.
func TestReduceLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Reduce(context.Background(), Engine{Workers: w, Chunk: 8}, 640, sumReducer(),
			func(i int) (float64, error) {
				ran.Add(1)
				if i >= 100 && i%25 == 0 { // trials 100, 125, 150, ... fail
					return 0, fmt.Errorf("trial %d: %w", i, sentinel)
				}
				return 1, nil
			})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error lost: %v", w, err)
		}
		if got := err.Error(); got != "trial 100: boom" {
			t.Fatalf("workers=%d: first error is %q, want trial 100", w, got)
		}
		// The feeder stops after the failure: far fewer than 640 trials run.
		if n := ran.Load(); n >= 640 {
			t.Fatalf("workers=%d: all %d trials ran despite early failure", w, n)
		}
	}
}

// Reduce with an empty or single-trial campaign, and missing hooks.
func TestReduceDegenerate(t *testing.T) {
	ctx := context.Background()
	red := sumReducer()
	got, err := Reduce(ctx, Engine{}, 0, red, func(i int) (float64, error) { return 1, nil })
	if err != nil || got != 0 {
		t.Fatalf("empty: %v, %v", got, err)
	}
	got, err = Reduce(ctx, Engine{Workers: 8}, 1, red, func(i int) (float64, error) { return 42, nil })
	if err != nil || got != 42 {
		t.Fatalf("single: %v, %v", got, err)
	}
	if _, err := Reduce(ctx, Engine{}, 3, Reducer[int, int]{}, func(i int) (int, error) { return i, nil }); err == nil {
		t.Fatal("nil Fold accepted")
	}
	if _, err := Reduce(ctx, Engine{Chunk: 1}, 3,
		Reducer[int, int]{Fold: func(a, _, v int) int { return a + v }},
		func(i int) (int, error) { return i, nil }); err == nil {
		t.Fatal("multi-chunk reduction without Merge accepted")
	}
}

// Per-worker scratch is allocated once per worker and reused across
// chunks, exactly like RunScratch.
func TestReduceScratchReuse(t *testing.T) {
	workers := 4
	var made atomic.Int64
	_, err := ReduceScratch(context.Background(), Engine{Workers: workers, Chunk: 5}, 200,
		sumReducer(),
		func() []float64 { made.Add(1); return make([]float64, 4) },
		func(i int, scratch []float64) (float64, error) {
			scratch[0] = float64(i)
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n > int64(workers) {
		t.Fatalf("%d scratch allocations for %d workers", n, workers)
	}
}

// Progress under Reduce: counts never decrease, total is constant, and
// the final call reports (n, n).
func TestReduceProgressMonotone(t *testing.T) {
	for _, w := range []int{1, 4} {
		var mu sync.Mutex
		last, calls := 0, 0
		sawFinal := false
		n := 500
		_, err := Reduce(context.Background(), Engine{Workers: w, Chunk: 16, Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done < last {
				t.Errorf("progress went backwards: %d after %d", done, last)
			}
			last = done
			if done == n {
				sawFinal = true
			}
		}}, n, sumReducer(), func(i int) (float64, error) { return 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		if !sawFinal {
			t.Fatalf("workers=%d: final (n, n) progress call missing", w)
		}
		// Chunk-granular: one tick per chunk, not per trial.
		if wantCalls := (n + 15) / 16; calls > wantCalls {
			t.Fatalf("workers=%d: %d progress calls for %d chunks", w, calls, wantCalls)
		}
	}
}

// Cancelling mid-chunk aborts within one trial's latency and leaks no
// goroutines — the pool, the merger and the feeder all drain.
func TestReduceCancelMidChunkPromptAndLeakFree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		var once sync.Once
		errCh := make(chan error, 1)
		go func() {
			_, err := Reduce(ctx, Engine{Workers: workers, Chunk: 1 << 20}, 1<<20, sumReducer(),
				func(i int) (float64, error) {
					once.Do(func() { close(started) })
					time.Sleep(100 * time.Microsecond)
					return 1, nil
				})
			errCh <- err
		}()
		<-started
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: mid-chunk cancellation not honoured within 5s", workers)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Fatalf("workers=%d: %d goroutines after cancel, started with %d", workers, got, before)
		}
	}
}

// A context cancelled before the run starts aborts immediately.
func TestReduceAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Reduce(ctx, Engine{Workers: 4}, 100, sumReducer(),
		func(i int) (float64, error) { ran.Add(1); return 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d trials ran under a cancelled context", n)
	}
}

// The memory contract of the streaming engine: total bytes allocated by
// a Reduce run do not scale with the trial count — a 1,000,000-trial
// reduction allocates no more than a small multiple of a 10,000-trial
// one, while Run's result slots alone are O(trials).
func TestReduceFlatMemoryAt10kVs1M(t *testing.T) {
	trial := func(i int) (float64, error) { return float64(i&1) - 0.5, nil }
	alloc := func(run func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	ctx := context.Background()
	reduceBytes := func(n int) uint64 {
		return alloc(func() {
			if _, err := Reduce(ctx, Engine{Workers: 4}, n, sumReducer(), trial); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := reduceBytes(10_000)
	big := reduceBytes(1_000_000)
	t.Logf("Reduce allocated %d B at 10k trials, %d B at 1M trials", small, big)
	// 100x the trials must cost far less than 100x the bytes; the bound
	// is generous (chunk bookkeeping grows with chunk count) but a result
	// slice would blow through it by orders of magnitude.
	if big > 10*small+1<<20 {
		t.Fatalf("Reduce memory scales with trials: %d B at 10k vs %d B at 1M", small, big)
	}
	runBytes := alloc(func() {
		if _, err := Run(ctx, Engine{Workers: 4}, 1_000_000, trial); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Run allocated %d B at 1M trials", runBytes)
	if runBytes < 8*1_000_000 { // the float64 result slots alone
		t.Fatalf("Run allocated only %d B for 1M trials — slice accounting broken?", runBytes)
	}
	if big >= runBytes/10 {
		t.Fatalf("Reduce (%d B) not an order of magnitude under Run (%d B) at 1M trials", big, runBytes)
	}
}
