// Package campaign is the shared parallel Monte-Carlo trial engine. Every
// statistical study in the repository — the Fig. 4 process-variation
// envelope, the noise detection and resolution sweeps, the component
// fault campaign, the production yield simulation, the Fig. 8 deviation
// sweep — is a batch of independent trials, and this package runs such a
// batch across a bounded worker pool while keeping the results
// bit-identical at any worker count.
//
// # Determinism
//
// Results are a pure function of (root seed, spec, chunk size) — never
// of the worker count, the scheduler, or the machine:
//
//   - each trial draws randomness only from its own substream, derived
//     as a pure function of (root seed, trial index) via Engine.Stream
//     (or pre-derived serially by the caller before fan-out);
//   - results land in an indexed slot, so output order is the trial
//     order regardless of completion order;
//   - the first error is reported by trial index, not by wall-clock
//     arrival.
//
// The package itself is clock-free and draws no global randomness; the
// mclint detrand analyzer machine-checks that, here and in every
// closure handed to the engine.
//
// # Cancellation reach
//
// Every entry point takes a context.Context and stops dispatching new
// trials as soon as it is done, returning ctx.Err() after the in-flight
// trials drain — a cancelled campaign aborts within one trial's latency
// and leaks no goroutines. The fabric's lease revocation rides exactly
// this path: coordinator → worker → span context → trial loop.
//
// # Execution modes and durability
//
// Three entry-point families share the engine. Run/RunScratch
// materialize every trial result in an indexed slot — O(trials) memory,
// for campaigns that need per-trial output. Reduce/ReduceScratch
// stream: workers fold trial results into per-chunk accumulators merged
// in chunk-index order, so memory stays O(workers + chunk) at any trial
// count (see reduce.go). ReduceSpan/ReduceSpanScratch generalize the
// streaming form to a contiguous trial span with a restored accumulator
// prefix and a checkpoint sink on chunk boundaries (see span.go) — the
// durable, shardable mode the distributed fabric runs, where a resumed
// or sharded reduction replays the exact fold chain of an uninterrupted
// one.
//
// # Observation
//
// Engine.Progress (per trial, or per chunk when reducing) and
// Engine.Meter (pool size, chunk fold start/done events) expose a run
// to dashboards and the metrics layer. Both are strictly observers:
// they carry no clock into the engine and can never affect results, so
// an instrumented run is bit-identical to a bare one.
package campaign
