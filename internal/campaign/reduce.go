package campaign

import (
	"context"
)

// DefaultChunk is the trial count one reduction chunk covers when
// Engine.Chunk is unset. Large enough that per-chunk overhead (one
// accumulator allocation, one progress tick, one channel round trip) is
// negligible against real trial work; small enough that progress stays
// lively and a cancelled run aborts quickly.
const DefaultChunk = 4096

// Reducer describes a streaming reduction over trial results: how to
// start a chunk accumulator, how to fold one trial into it, and how to
// merge two chunk accumulators.
//
// Determinism contract: trials are folded in ascending index order
// within each chunk, and chunks are merged in ascending chunk order, so
// for a fixed chunk size (Engine.Chunk) the final accumulator is
// bit-identical at any worker count — even when Fold/Merge are not
// associative in the exact sense (floating-point sums, ordered appends).
type Reducer[T, A any] struct {
	// New returns a fresh chunk accumulator; nil means the zero A.
	New func() A
	// Fold absorbs trial i's result v into the chunk accumulator and
	// returns the updated accumulator. Required.
	Fold func(acc A, i int, v T) A
	// Merge combines the running global accumulator with the next chunk's
	// accumulator (ascending chunk order) and returns the result.
	// Required when a run spans more than one chunk.
	Merge func(into, next A) A
}

// Reduce executes n independent trials across the pool and streams their
// results through the reducer instead of materializing them: each worker
// folds the trials of one chunk (Engine.Chunk, default DefaultChunk)
// into a per-chunk accumulator, and completed chunks are merged in chunk
// index order. Peak memory is O(workers + chunk), independent of n —
// the mode million-trial campaigns run in.
//
// Error and cancellation semantics match Run: the error of the
// lowest-index failing trial is returned (chunks beyond the first
// failing one are not started, which cannot hide a lower-index error
// because chunks are dispatched in ascending order), and a cancelled
// context aborts within one trial's latency, drains the pool, and
// returns ctx.Err(). Progress ticks once per completed chunk with the
// cumulative trial count, so it is monotone and ends at (n, n).
func Reduce[T, A any](ctx context.Context, e Engine, n int, r Reducer[T, A], trial func(i int) (T, error)) (A, error) {
	return ReduceScratch(ctx, e, n, r,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return trial(i) })
}

// ReduceScratch is Reduce with per-worker scratch state, exactly as
// RunScratch is to Run: newScratch runs once per worker and its value is
// threaded into every trial that worker folds. Scratch must not affect
// results.
//
// It is the span [0, n) of the durable span engine with no restored
// state and no checkpoint sink — see ReduceSpanScratch for the
// checkpoint/resume and sharding form.
func ReduceScratch[T, A, S any](ctx context.Context, e Engine, n int, r Reducer[T, A], newScratch func() S, trial func(i int, scratch S) (T, error)) (A, error) {
	if n < 0 {
		n = 0
	}
	return ReduceSpanScratch(ctx, e, Span{Lo: 0, Hi: n}, nil, nil, r, newScratch, trial)
}
