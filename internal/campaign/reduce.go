package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultChunk is the trial count one reduction chunk covers when
// Engine.Chunk is unset. Large enough that per-chunk overhead (one
// accumulator allocation, one progress tick, one channel round trip) is
// negligible against real trial work; small enough that progress stays
// lively and a cancelled run aborts quickly.
const DefaultChunk = 4096

// Reducer describes a streaming reduction over trial results: how to
// start a chunk accumulator, how to fold one trial into it, and how to
// merge two chunk accumulators.
//
// Determinism contract: trials are folded in ascending index order
// within each chunk, and chunks are merged in ascending chunk order, so
// for a fixed chunk size (Engine.Chunk) the final accumulator is
// bit-identical at any worker count — even when Fold/Merge are not
// associative in the exact sense (floating-point sums, ordered appends).
type Reducer[T, A any] struct {
	// New returns a fresh chunk accumulator; nil means the zero A.
	New func() A
	// Fold absorbs trial i's result v into the chunk accumulator and
	// returns the updated accumulator. Required.
	Fold func(acc A, i int, v T) A
	// Merge combines the running global accumulator with the next chunk's
	// accumulator (ascending chunk order) and returns the result.
	// Required when a run spans more than one chunk.
	Merge func(into, next A) A
}

// Reduce executes n independent trials across the pool and streams their
// results through the reducer instead of materializing them: each worker
// folds the trials of one chunk (Engine.Chunk, default DefaultChunk)
// into a per-chunk accumulator, and completed chunks are merged in chunk
// index order. Peak memory is O(workers + chunk), independent of n —
// the mode million-trial campaigns run in.
//
// Error and cancellation semantics match Run: the error of the
// lowest-index failing trial is returned (chunks beyond the first
// failing one are not started, which cannot hide a lower-index error
// because chunks are dispatched in ascending order), and a cancelled
// context aborts within one trial's latency, drains the pool, and
// returns ctx.Err(). Progress ticks once per completed chunk with the
// cumulative trial count, so it is monotone and ends at (n, n).
func Reduce[T, A any](ctx context.Context, e Engine, n int, r Reducer[T, A], trial func(i int) (T, error)) (A, error) {
	return ReduceScratch(ctx, e, n, r,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return trial(i) })
}

// ReduceScratch is Reduce with per-worker scratch state, exactly as
// RunScratch is to Run: newScratch runs once per worker and its value is
// threaded into every trial that worker folds. Scratch must not affect
// results.
func ReduceScratch[T, A, S any](ctx context.Context, e Engine, n int, r Reducer[T, A], newScratch func() S, trial func(i int, scratch S) (T, error)) (A, error) {
	var zero A
	newAcc := r.New
	if newAcc == nil {
		newAcc = func() A { var a A; return a }
	}
	if r.Fold == nil {
		return zero, errors.New("campaign: Reduce needs a Fold function")
	}
	if n <= 0 {
		return newAcc(), nil
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	chunk := e.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nChunks := (n + chunk - 1) / chunk
	if nChunks > 1 && r.Merge == nil {
		return zero, errors.New("campaign: Reduce spanning multiple chunks needs a Merge function")
	}
	// Progress is chunk-granular and strictly monotone: ticks are
	// serialized under a mutex and delivered only when they advance the
	// high-water mark, so an observer never sees the count decrease even
	// when workers retire chunks out of order. One lock per chunk is
	// noise next to a chunk's worth of trial work.
	var done atomic.Int64
	var progressMu sync.Mutex
	reported := 0
	tick := func(trials int) {
		if trials == 0 {
			return
		}
		d := int(done.Add(int64(trials)))
		if e.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		if d > reported {
			reported = d
			e.Progress(d, n)
		}
	}
	// runChunk folds chunk c's trials in ascending index order into a
	// fresh accumulator. On a trial error (or mid-chunk cancellation) it
	// stops at that trial; the index of the failing trial is implicit in
	// the error being the first of the chunk.
	runChunk := func(c int, scratch S) (A, int, error) {
		lo := c * chunk
		hi := min(lo+chunk, n)
		acc := newAcc()
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				tick(i - lo)
				return acc, i - lo, err
			}
			v, err := trial(i, scratch)
			if err != nil {
				tick(i - lo)
				return acc, i - lo, err
			}
			acc = r.Fold(acc, i, v)
		}
		tick(hi - lo)
		return acc, hi - lo, nil
	}

	workers := e.poolSize(nChunks)
	if workers == 1 {
		scratch := newScratch()
		var global A
		for c := 0; c < nChunks; c++ {
			acc, _, err := runChunk(c, scratch)
			if err != nil {
				return zero, err
			}
			if c == 0 {
				global = acc
			} else {
				global = r.Merge(global, acc)
			}
		}
		return global, nil
	}

	// Parallel path. Chunks flow feeder -> workers -> merger; the merger
	// folds them into the global accumulator in ascending chunk order. A
	// token window bounds dispatched-but-unmerged chunks to 2*workers, so
	// a slow chunk 0 cannot let faster workers pile up O(nChunks)
	// accumulators — this is what keeps memory O(workers), not O(trials).
	type chunkOut struct {
		c   int
		acc A
		err error
	}
	window := 2 * workers
	next := make(chan int)
	results := make(chan chunkOut, window) // never blocks a worker: outstanding <= window
	tokens := make(chan struct{}, window)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for c := range next {
				// A cancelled context stops the work, not the drain: skip
				// the chunk but keep consuming until the channel closes,
				// and still report it so the merger's accounting closes.
				if err := ctx.Err(); err != nil {
					results <- chunkOut{c: c, err: err}
					continue
				}
				acc, _, err := runChunk(c, scratch)
				if err != nil {
					// Real trial errors stop the feeder early; ctx errors
					// are already handled by its Done branch.
					failed.Store(true)
				}
				results <- chunkOut{c: c, acc: acc, err: err}
			}
		}()
	}

	var (
		global     A
		firstErr   error
		mergerDone = make(chan struct{})
	)
	go func() {
		defer close(mergerDone)
		pending := make(map[int]chunkOut, window)
		nextMerge := 0
		for out := range results {
			pending[out.c] = out
			for {
				o, ok := pending[nextMerge]
				if !ok {
					break
				}
				delete(pending, nextMerge)
				<-tokens // chunk retired: let the feeder dispatch another
				if firstErr == nil {
					if o.err != nil {
						// Ascending-order scan: the first error seen here is
						// the lowest-index failing trial's.
						firstErr = o.err
					} else if nextMerge == 0 {
						global = o.acc
					} else {
						global = r.Merge(global, o.acc)
					}
				}
				nextMerge++
			}
		}
	}()

	cancelled := false
feed:
	for c := 0; c < nChunks; c++ {
		if failed.Load() {
			// Chunks are fed in ascending order, so everything that could
			// hold a lower-index error is already in flight.
			break
		}
		select {
		case tokens <- struct{}{}:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
		select {
		case next <- c:
		case <-ctx.Done():
			cancelled = true
			// Unwind the token the undispatched chunk held so the merger's
			// token accounting stays balanced.
			<-tokens
			break feed
		}
	}
	close(next)
	wg.Wait()
	close(results)
	<-mergerDone
	if cancelled || ctx.Err() != nil {
		return zero, ctx.Err()
	}
	if firstErr != nil {
		return zero, firstErr
	}
	return global, nil
}
