package campaign

// Meter observes the streaming reduction engine's execution — the hook
// instrumentation layers (internal/serve's metrics adapter) attach
// through Engine.Meter. The engine itself is clock-free by contract
// (the detrand invariant), so it reports only events and counts; a
// meter implementation timestamps them on its own side.
//
// Calls may arrive concurrently from several workers. Implementations
// must be safe for concurrent use, must not block, and must not affect
// results: a meter observes a run exactly like Progress does, so
// enabling one preserves the engine's bit-identity guarantees (pinned
// by TestMeterDoesNotAffectResults).
type Meter interface {
	// ReduceStart opens a reduction: the effective worker-pool size and
	// the span's trial count. Called once per Reduce/ReduceSpan run,
	// before any chunk starts.
	ReduceStart(workers, trials int)
	// ChunkStart marks a worker beginning to fold chunk (a global,
	// trial-0-aligned chunk index). The interval to the matching
	// ChunkDone is the chunk's fold latency; the number of started but
	// unfinished chunks is the engine's live worker saturation.
	ChunkStart(chunk int)
	// ChunkDone marks chunk's fold completing (successfully or at the
	// trial that failed/cancelled) with the number of trials folded.
	ChunkDone(chunk, trials int)
}

// nopMeter is the Meter the engine uses when none is configured.
type nopMeter struct{}

func (nopMeter) ReduceStart(int, int) {}
func (nopMeter) ChunkStart(int)       {}
func (nopMeter) ChunkDone(int, int)   {}
