package campaign

import "sync"

// PooledReducer wraps a reducer whose accumulator is a heavy reusable
// object — a quantile sketch, a histogram, a scratch matrix — so chunk
// accumulators are drawn from a sync.Pool and recycled the moment their
// chunk is merged, instead of being freshly allocated once per chunk. A
// million-trial reduction retires hundreds of chunks; without pooling,
// each one allocates a full accumulator that lives only long enough to
// be merged, and total allocation grows with the trial count even
// though live heap stays flat. With pooling, steady state is one warm
// accumulator per worker plus the merge window.
//
// reset must return the accumulator to its New state in place. Merge
// must fold next into the running accumulator without retaining next —
// the wrapper puts next back in the pool as soon as r.Merge returns
// (true for every integer-count merge in this codebase; a Merge that
// keeps a reference to next cannot be pooled).
//
// The determinism contract is unchanged: pooling touches only where
// accumulators come from, never the fold or merge order.
func PooledReducer[T, A any](r Reducer[T, A], reset func(A)) Reducer[T, A] {
	newAcc := r.New
	if newAcc == nil {
		newAcc = func() A { var a A; return a }
	}
	pool := &sync.Pool{New: func() any { return newAcc() }}
	return Reducer[T, A]{
		New:  func() A { return pool.Get().(A) },
		Fold: r.Fold,
		Merge: func(into, next A) A {
			out := r.Merge(into, next)
			reset(next)
			pool.Put(next)
			return out
		},
	}
}
