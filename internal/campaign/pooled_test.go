package campaign

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/stat"
)

// sketchReducer is the mergeable-accumulator surface the noise
// calibrations run on: per-chunk quantile sketches folded in index
// order, merged exactly by integer addition.
func sketchReducer() Reducer[float64, *stat.QuantileSketch] {
	return Reducer[float64, *stat.QuantileSketch]{
		New: func() *stat.QuantileSketch { return stat.NewQuantileSketch(stat.DefaultSketchPrecision) },
		Fold: func(acc *stat.QuantileSketch, _ int, v float64) *stat.QuantileSketch {
			acc.Push(v)
			return acc
		},
		Merge: func(into, next *stat.QuantileSketch) *stat.QuantileSketch {
			into.Merge(next)
			return into
		},
	}
}

// sketchTrial is a deterministic allocation-free synthetic measurement
// with enough spread to occupy many sketch buckets.
func sketchTrial(i int) (float64, error) {
	return 0.001 + float64(i%997)*0.003, nil
}

// A pooled sketch reduction is bit-identical to the single-stream
// sketch at any worker count: the sketch's integer merges are exactly
// associative, and pooling only changes where accumulators come from.
func TestPooledReducerSketchBitIdentical(t *testing.T) {
	ctx := context.Background()
	const n = 20_000
	want := stat.NewQuantileSketch(stat.DefaultSketchPrecision)
	for i := 0; i < n; i++ {
		v, _ := sketchTrial(i)
		want.Push(v)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		red := PooledReducer(sketchReducer(), func(s *stat.QuantileSketch) { s.Reset() })
		got, err := Reduce(ctx, Engine{Workers: w, Chunk: 512}, n, red, sketchTrial)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("workers=%d: pooled sketch reduction differs from single-stream sketch", w)
		}
	}
}

// Pooling keeps total allocation flat in the trial count: recycled
// chunk sketches mean a 1M-trial reduction allocates no more than a
// small multiple of a 10k-trial one, where the unpooled reducer pays
// one full sketch allocation per chunk.
func TestPooledReducerFlatAllocation(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation distorts allocation accounting")
	}
	ctx := context.Background()
	alloc := func(n int) uint64 {
		red := PooledReducer(sketchReducer(), func(s *stat.QuantileSketch) { s.Reset() })
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := Reduce(ctx, Engine{Workers: 4}, n, red, sketchTrial); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	small := alloc(10_000)
	big := alloc(1_000_000)
	t.Logf("pooled sketch reduce allocated %d B at 10k trials, %d B at 1M trials", small, big)
	if big > 10*small+1<<20 {
		t.Fatalf("pooled reduction memory scales with trials: %d B at 10k vs %d B at 1M", small, big)
	}
}
