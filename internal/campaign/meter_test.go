package campaign

import (
	"context"
	"sync"
	"testing"
)

// recordingMeter counts meter events and checks start/done pairing.
type recordingMeter struct {
	mu        sync.Mutex
	workers   int
	trials    int
	starts    map[int]int // chunk -> start count
	dones     map[int]int // chunk -> done count
	folded    int
	open      int // starts minus dones, live
	maxOpen   int
	startSeen bool
}

func newRecordingMeter() *recordingMeter {
	return &recordingMeter{starts: map[int]int{}, dones: map[int]int{}}
}

func (m *recordingMeter) ReduceStart(workers, trials int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.startSeen = true
	m.workers = workers
	m.trials = trials
}

func (m *recordingMeter) ChunkStart(chunk int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.starts[chunk]++
	m.open++
	if m.open > m.maxOpen {
		m.maxOpen = m.open
	}
}

func (m *recordingMeter) ChunkDone(chunk, trials int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dones[chunk]++
	m.folded += trials
	m.open--
}

// meterTrial is an order-sensitive reduction: fold order differences
// change the bits, so identical results prove the meter observed
// without interfering.
func meterTrial(i int) (float64, error) { return float64(i) * 1.000000001, nil }

var meterReducer = Reducer[float64, float64]{
	Fold:  func(acc float64, _ int, v float64) float64 { return acc*1.0000001 + v },
	Merge: func(into, next float64) float64 { return into*1.0000003 + next },
}

// TestMeterObservesReduce checks the meter's accounting: one
// ReduceStart with the resolved pool size, one start and one done per
// chunk, every trial counted, and no chunk left open.
func TestMeterObservesReduce(t *testing.T) {
	const n, chunk = 1000, 64
	m := newRecordingMeter()
	e := Engine{Workers: 4, Chunk: chunk, Meter: m}
	if _, err := Reduce(context.Background(), e, n, meterReducer, meterTrial); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.startSeen || m.workers != 4 || m.trials != n {
		t.Fatalf("ReduceStart saw workers=%d trials=%d (seen=%v), want 4/%d", m.workers, m.trials, m.startSeen, n)
	}
	wantChunks := (n + chunk - 1) / chunk
	if len(m.starts) != wantChunks || len(m.dones) != wantChunks {
		t.Fatalf("saw %d starts / %d dones, want %d chunks", len(m.starts), len(m.dones), wantChunks)
	}
	for c, s := range m.starts {
		if s != 1 || m.dones[c] != 1 {
			t.Fatalf("chunk %d: %d starts, %d dones; want exactly one each", c, s, m.dones[c])
		}
	}
	if m.folded != n {
		t.Fatalf("meter counted %d folded trials, want %d", m.folded, n)
	}
	if m.open != 0 {
		t.Fatalf("%d chunks still open after the run", m.open)
	}
	if m.maxOpen > 4 {
		t.Fatalf("max %d chunks in flight with 4 workers", m.maxOpen)
	}
}

// TestMeterDoesNotAffectResults pins the observation contract: an
// order-sensitive reduction lands on identical bits with and without a
// meter, at 1, 4 and 8 workers.
func TestMeterDoesNotAffectResults(t *testing.T) {
	const n, chunk = 5000, 128
	ctx := context.Background()
	ref, err := Reduce(ctx, Engine{Workers: 1, Chunk: chunk}, n, meterReducer, meterTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		got, err := Reduce(ctx, Engine{Workers: w, Chunk: chunk, Meter: newRecordingMeter()}, n, meterReducer, meterTrial)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("metered run at %d workers: %v, bare single-worker run: %v", w, got, ref)
		}
	}
}

// TestMeterClosesOnCancel checks every started chunk reports done even
// when the run is cancelled mid-flight.
func TestMeterClosesOnCancel(t *testing.T) {
	const n, chunk = 100000, 32
	m := newRecordingMeter()
	ctx, cancel := context.WithCancel(context.Background())
	count := 0
	_, err := Reduce(ctx, Engine{Workers: 4, Chunk: chunk, Meter: m}, n, meterReducer, func(i int) (float64, error) {
		count++
		if count > 500 {
			cancel()
		}
		return meterTrial(i)
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.open != 0 {
		t.Fatalf("%d chunks left open after cancellation", m.open)
	}
}
