package repro

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/stat"
	"repro/internal/testbench"
)

// STAT-SKETCH: the mergeable quantile sketch's per-observation cost —
// the fold every streamed calibration pays once per trial. Warm pushes
// are pinned zero-alloc (TestQuantileSketchPushZeroAlloc); the ns/op
// here is the budget line for million-trial null calibrations.
func BenchmarkQuantileSketchPush(b *testing.B) {
	s := stat.NewQuantileSketch(stat.DefaultSketchPrecision)
	s.Push(1)
	s.Push(-1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(0.01 + float64(i&1023)*1e-4)
	}
	b.ReportMetric(float64(s.N()), "pushed")
}

// NOISE-CALIB-1M: the streamed null calibration at a million synthetic
// trials — the path that used to materialize an O(trials) sample before
// taking its quantile. The allocation column is the O(workers + chunk +
// sketch) story: pooled per-chunk sketches hold total allocation flat
// however many trials the spec names, pinned by
// testbench.TestNoiseCalibrationFlatMemory.
func BenchmarkNoiseNullCalibration(b *testing.B) {
	ctx := context.Background()
	trial := func(i int, _ *core.TrialScratch) (float64, error) {
		return 0.01 + float64(i%9973)*1.3e-5, nil
	}
	b.ReportAllocs()
	var thr float64
	for i := 0; i < b.N; i++ {
		dec, err := testbench.CalibrateNullThreshold(ctx, campaign.Engine{Workers: 4, Seed: 2}, 1_000_000, 0, trial)
		if err != nil {
			b.Fatal(err)
		}
		thr = dec.Threshold
	}
	b.ReportMetric(thr, "threshold")
}
