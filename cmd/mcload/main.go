// Command mcload is the mixed-workload replay client behind make load:
// it drives a running mcserved (or an in-process one it starts itself)
// with a deterministic sequence of small campaign specs, measures
// client-side job latency and throughput, diffs the server's /metrics
// before and after, and — against a checked-in baseline — fails on a
// throughput or latency-quantile regression.
//
//	mcload                                  # in-process server, default mix
//	mcload -base http://host:8080           # replay against a live instance
//	mcload -jobs 40 -concurrency 4 -seed 7 -mix fig4mc=1,yield=3
//	mcload -baseline LOAD_BASELINE.json     # gate against the baseline
//	mcload -update-baseline                 # rewrite the baseline from this run
//
// The spec sequence is a pure function of -seed and the mix, so two
// runs against the same binary submit byte-identical work; what the
// gate measures is the serving stack, not the workload. Latency gates
// use wide multiples (see gate) so only a real regression — not machine
// noise — trips them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	var (
		base      = flag.String("base", "", "base URL of a running mcserved; empty starts an in-process server")
		jobs      = flag.Int("jobs", 40, "number of campaign jobs to replay")
		conc      = flag.Int("concurrency", 4, "concurrent submitters")
		seed      = flag.Uint64("seed", 1, "root seed of the deterministic spec sequence")
		mixFlag   = flag.String("mix", "fig4mc=1,yield=3", "campaign mix as name=weight pairs")
		duration  = flag.Duration("duration", 0, "stop submitting after this long (0 = run all -jobs)")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
		update    = flag.Bool("update-baseline", false, "rewrite -baseline from this run instead of gating")
		report    = flag.String("report", "", "write the run report JSON here")
		injectLat = flag.Duration("inject-latency", 0, "artificial per-request delay in the in-process server (regression-gate self-test)")
	)
	flag.Parse()
	if err := run(*base, *jobs, *conc, *seed, *mixFlag, *duration, *baseline, *update, *report, *injectLat); err != nil {
		fmt.Fprintln(os.Stderr, "mcload:", err)
		os.Exit(1)
	}
}

// mixEntry is one weighted campaign in the workload mix.
type mixEntry struct {
	name   string
	weight int
}

// parseMix parses "fig4mc=1,yield=3" into an ordered weighted mix.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("bad mix weight %q", w)
		}
		if name != "fig4mc" && name != "yield" {
			return nil, fmt.Errorf("mix campaign %q not in the replay set (fig4mc, yield)", name)
		}
		mix = append(mix, mixEntry{name: name, weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return mix, nil
}

// splitmix64 is the spec-sequence hash: spec i derives every varying
// knob from h(seed, i), so the workload is a pure function of the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// specFor deterministically picks job i's spec from the mix: small
// campaigns sized for replay throughput, with enough knob variation to
// exercise the param-decoding and scheduling paths.
func specFor(mix []mixEntry, seed uint64, i int) string {
	h := splitmix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	pick := int(h % uint64(total))
	var name string
	for _, m := range mix {
		if pick < m.weight {
			name = m.name
			break
		}
		pick -= m.weight
	}
	h2 := splitmix64(h)
	switch name {
	case "fig4mc":
		return fmt.Sprintf(`{"campaign":"fig4mc","seed":%d,"params":{"monitor":2,"dies":%d,"cols":11}}`,
			h2%1000, 16+h2%5)
	default: // yield
		// Small trial counts and a pinned threshold (which skips the
		// decision calibration) keep jobs fast: replay measures the
		// serving stack, not campaign compute.
		return fmt.Sprintf(`{"campaign":"yield","seed":%d,"chunk":8,"params":{"n":%d,"threshold":0.03}}`,
			h2%1000, 16+8*(h2%3))
	}
}

// Report is the run's measured outcome — the JSON make load writes and
// the shape LOAD_BASELINE.json pins.
type Report struct {
	Jobs        int     `json:"jobs"`
	Failures    int     `json:"failures"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// Metrics deltas scraped from the server around the run.
	TrialsDelta   float64 `json:"trials_delta"`
	RequestsDelta float64 `json:"requests_delta"`
	ChunksDelta   uint64  `json:"chunks_delta"`
}

// gate compares a run against the baseline with deliberately wide
// margins: throughput may drop to a quarter and latency quantiles may
// quadruple before the gate trips, so machine variation passes and a
// serialization bug, accidental O(n^2) route, or blocking instrument
// does not.
func gate(r, b Report) error {
	if b.JobsPerSec > 0 && r.JobsPerSec < b.JobsPerSec/4 {
		return fmt.Errorf("throughput regression: %.2f jobs/s vs baseline %.2f (floor %.2f)",
			r.JobsPerSec, b.JobsPerSec, b.JobsPerSec/4)
	}
	if b.P90Seconds > 0 && r.P90Seconds > 4*b.P90Seconds {
		return fmt.Errorf("latency regression: p90 %.4fs vs baseline %.4fs (ceiling %.4fs)",
			r.P90Seconds, b.P90Seconds, 4*b.P90Seconds)
	}
	if b.P99Seconds > 0 && r.P99Seconds > 6*b.P99Seconds {
		return fmt.Errorf("latency regression: p99 %.4fs vs baseline %.4fs (ceiling %.4fs)",
			r.P99Seconds, b.P99Seconds, 6*b.P99Seconds)
	}
	return nil
}

// quantile reads q from ascending-sorted samples (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// delay wraps a handler with a fixed per-request sleep — the injected
// regression the gate self-test proves it catches.
func delay(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		next.ServeHTTP(w, r)
	})
}

func run(base string, jobs, conc int, seed uint64, mixFlag string, duration time.Duration, baselinePath string, update bool, reportPath string, injectLat time.Duration) error {
	mix, err := parseMix(mixFlag)
	if err != nil {
		return err
	}
	if jobs < 1 || conc < 1 {
		return fmt.Errorf("need at least one job and one submitter (jobs=%d concurrency=%d)", jobs, conc)
	}
	if base != "" && injectLat > 0 {
		return fmt.Errorf("-inject-latency only applies to the in-process server")
	}
	if base == "" {
		srv := serve.New(context.Background())
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: delay(injectLat, srv.Handler())}
		go func() { _ = hs.Serve(ln) }() // torn down via Close below; replay errors are the verdict
		defer func() { _ = hs.Close() }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("mcload: in-process mcserved on %s\n", base)
	}

	rep, err := replay(base, mix, seed, jobs, conc, duration)
	if err != nil {
		return err
	}
	fmt.Printf("mcload: %d jobs in %.2fs — %.2f jobs/s, p50 %.4fs p90 %.4fs p99 %.4fs (%v trials, %v chunks folded)\n",
		rep.Jobs, rep.WallSeconds, rep.JobsPerSec, rep.P50Seconds, rep.P90Seconds, rep.P99Seconds,
		rep.TrialsDelta, rep.ChunksDelta)
	if rep.Failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failures, rep.Jobs)
	}
	if rep.TrialsDelta <= 0 {
		return fmt.Errorf("trial counter did not move (delta %v) — metrics wiring broken", rep.TrialsDelta)
	}

	if reportPath != "" {
		if err := writeJSONFile(reportPath, rep); err != nil {
			return err
		}
		fmt.Printf("mcload: report written to %s\n", reportPath)
	}
	if baselinePath == "" {
		return nil
	}
	if update {
		if err := writeJSONFile(baselinePath, rep); err != nil {
			return err
		}
		fmt.Printf("mcload: baseline updated at %s\n", baselinePath)
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var bl Report
	if err := json.Unmarshal(data, &bl); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if err := gate(rep, bl); err != nil {
		return err
	}
	fmt.Printf("mcload: within baseline envelope (throughput floor %.2f jobs/s, p90 ceiling %.4fs)\n",
		bl.JobsPerSec/4, 4*bl.P90Seconds)
	return nil
}

// replay submits the deterministic spec sequence through conc workers,
// polling each job to a terminal state, and returns the measured
// report with the /metrics deltas already folded in.
func replay(base string, mix []mixEntry, seed uint64, jobs, conc int, duration time.Duration) (Report, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	before, err := scrapeJSON(client, base)
	if err != nil {
		return Report{}, fmt.Errorf("pre-run scrape: %w", err)
	}

	var (
		mu        sync.Mutex
		latencies []float64
		failures  int
		firstErr  error
	)
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				lat, err := runJob(client, base, specFor(mix, seed, i))
				mu.Lock()
				if err != nil {
					failures++
					if firstErr == nil {
						firstErr = fmt.Errorf("job %d: %w", i, err)
					}
				} else {
					latencies = append(latencies, lat.Seconds())
				}
				mu.Unlock()
			}
		}()
	}
	submitted := 0
	for i := 0; i < jobs; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		next <- i
		submitted++
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	after, err := scrapeJSON(client, base)
	if err != nil {
		return Report{}, fmt.Errorf("post-run scrape: %w", err)
	}

	sort.Float64s(latencies)
	rep := Report{
		Jobs:        submitted,
		Failures:    failures,
		WallSeconds: wall.Seconds(),
		P50Seconds:  quantile(latencies, 0.50),
		P90Seconds:  quantile(latencies, 0.90),
		P99Seconds:  quantile(latencies, 0.99),
	}
	if wall > 0 {
		rep.JobsPerSec = float64(submitted-failures) / wall.Seconds()
	}
	rep.TrialsDelta = familyTotal(after, "mccampaign_trials_total") - familyTotal(before, "mccampaign_trials_total")
	rep.RequestsDelta = familyTotal(after, "mcserved_http_requests_total") - familyTotal(before, "mcserved_http_requests_total")
	rep.ChunksDelta = histogramCount(after, "mccampaign_chunk_seconds") - histogramCount(before, "mccampaign_chunk_seconds")
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}

// runJob submits one spec and polls it to a terminal state, returning
// the submit-to-done latency.
func runJob(client *http.Client, base, spec string) (time.Duration, error) {
	start := time.Now()
	resp, err := client.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return 0, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit status %s", resp.Status)
	}
	for st.State == "running" {
		time.Sleep(10 * time.Millisecond)
		resp, err = client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return 0, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close() // body fully consumed; decode errors surface below
		if err != nil {
			return 0, err
		}
	}
	if st.State != "done" {
		return 0, fmt.Errorf("job %s ended %q: %s", st.ID, st.State, st.Error)
	}
	return time.Since(start), nil
}

// scrapeJSON fetches the server's JSON metrics snapshot.
func scrapeJSON(client *http.Client, base string) (metrics.JSONSnapshot, error) {
	var snap metrics.JSONSnapshot
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return snap, err
	}
	defer func() { _ = resp.Body.Close() }() // read side decides the outcome
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// familyTotal sums a family's scalar values; 0 when absent.
func familyTotal(snap metrics.JSONSnapshot, name string) float64 {
	f, ok := snap.Find(name)
	if !ok {
		return 0
	}
	return f.Total()
}

// histogramCount reads a plain histogram family's observation count.
func histogramCount(snap metrics.JSONSnapshot, name string) uint64 {
	f, ok := snap.Find(name)
	if !ok || len(f.Metrics) != 1 || f.Metrics[0].Count == nil {
		return 0
	}
	return *f.Metrics[0].Count
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
