package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("fig4mc=1,yield=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0] != (mixEntry{"fig4mc", 1}) || mix[1] != (mixEntry{"yield", 3}) {
		t.Fatalf("parsed %+v", mix)
	}
	for _, bad := range []string{"", "fig4mc", "fig4mc=0", "nosuch=1", "yield=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
}

// The spec sequence is a pure function of (seed, index): same seed,
// same bytes; a different seed varies the sequence.
func TestSpecSequenceDeterministic(t *testing.T) {
	mix, err := parseMix("fig4mc=1,yield=3")
	if err != nil {
		t.Fatal(err)
	}
	campaigns := map[string]bool{}
	for i := 0; i < 50; i++ {
		a := specFor(mix, 7, i)
		b := specFor(mix, 7, i)
		if a != b {
			t.Fatalf("spec %d not deterministic:\n%s\n%s", i, a, b)
		}
		name, _, _ := strings.Cut(strings.TrimPrefix(a, `{"campaign":"`), `"`)
		campaigns[name] = true
	}
	if !campaigns["fig4mc"] || !campaigns["yield"] {
		t.Fatalf("mix not exercised in 50 specs: %v", campaigns)
	}
	diff := false
	for i := 0; i < 50; i++ {
		if specFor(mix, 7, i) != specFor(mix, 8, i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seed does not vary the spec sequence")
	}
}

// The gate's pure comparison: wide margins pass, real regressions trip.
func TestGate(t *testing.T) {
	base := Report{JobsPerSec: 10, P90Seconds: 0.1, P99Seconds: 0.2}
	ok := Report{JobsPerSec: 4, P90Seconds: 0.3, P99Seconds: 0.9}
	if err := gate(ok, base); err != nil {
		t.Fatalf("in-envelope run gated: %v", err)
	}
	slow := Report{JobsPerSec: 10, P90Seconds: 0.5, P99Seconds: 0.2}
	if err := gate(slow, base); err == nil || !strings.Contains(err.Error(), "latency regression") {
		t.Fatalf("5x p90 not gated: %v", err)
	}
	starved := Report{JobsPerSec: 2, P90Seconds: 0.1, P99Seconds: 0.2}
	if err := gate(starved, base); err == nil || !strings.Contains(err.Error(), "throughput regression") {
		t.Fatalf("5x throughput drop not gated: %v", err)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(s, 0.5); q != 5 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(s, 0.9); q != 9 {
		t.Fatalf("p90 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty p50 = %v", q)
	}
}

// End to end: a clean run writes a baseline, and a rerun with an
// injected per-request sleep trips the regression gate — the capability
// the CI load step exists to provide. A yield-only mix keeps job
// latency HTTP-dominated, so the artificial delay cannot hide in
// campaign compute time.
func TestInjectedRegressionTripsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("replays real campaigns through a live server")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	report := filepath.Join(dir, "report.json")

	if err := run("", 8, 4, 7, "yield=1", 0, baseline, true, report, 0); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if _, err := os.Stat(report); err != nil {
		t.Fatalf("report not written: %v", err)
	}

	err := run("", 8, 4, 7, "yield=1", 0, baseline, false, "", time.Second)
	if err == nil {
		t.Fatal("run with 1s injected per-request latency passed the gate")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
}
