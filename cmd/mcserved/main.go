// Command mcserved serves the campaign registry over HTTP: every
// testbench campaign becomes reachable with a POST of its declarative
// spec, runs concurrently with streamed progress, and is cancellable
// mid-flight.
//
//	mcserved -addr :8080
//
//	curl localhost:8080/v1/campaigns                  # catalogue + schemas
//	curl -d '{"campaign":"fig4mc","seed":7}' localhost:8080/v1/campaigns
//	curl localhost:8080/v1/jobs/job-1                 # progress / result
//	curl localhost:8080/v1/jobs/job-1/events          # SSE progress stream
//	curl -X POST localhost:8080/v1/jobs/job-1/cancel  # abort mid-campaign
//
// SIGINT/SIGTERM shut the server down gracefully, cancelling running
// campaigns through the same context plumbing the API's cancel uses.
//
// -smoke starts the server on an ephemeral port, drives one small
// campaign through its own HTTP API and exits — the CI gate that proves
// the service end to end without external tooling.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		smoke = flag.Bool("smoke", false, "start on an ephemeral port, run one small campaign through the HTTP API, and exit")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, smoke bool) error {
	if smoke {
		addr = "127.0.0.1:0"
	}
	srv := serve.New(ctx)
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("mcserved listening on http://%s\n", ln.Addr())
	if smoke {
		err := smokeTest("http://" + ln.Addr().String())
		_ = hs.Close() // smoke exit path; the smokeTest error is the verdict
		<-errCh
		return err
	}
	select {
	case <-ctx.Done():
		fmt.Println("mcserved: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
		<-errCh
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// smokeTest exercises the service end to end: catalogue, submit, poll to
// completion, and print the campaign text.
func smokeTest(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/v1/campaigns")
	if err != nil {
		return err
	}
	var infos []struct {
		Name string `json:"name"`
	}
	err = json.NewDecoder(resp.Body).Decode(&infos)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		return errors.New("smoke: empty campaign catalogue")
	}
	fmt.Printf("smoke: catalogue lists %d campaigns\n", len(infos))

	spec := `{"campaign":"fig4mc","seed":7,"params":{"monitor":2,"dies":25,"cols":11}}`
	resp, err = client.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke: submit status %s", resp.Status)
	}
	fmt.Printf("smoke: submitted %s as %s\n", st.Spec.Campaign, st.ID)

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close() // body fully consumed; decode errors surface below
		if err != nil {
			return err
		}
		if st.State != serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: job still running after 60s (progress %d/%d)",
				st.Progress.Done, st.Progress.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != serve.StateDone || st.Result == nil {
		return fmt.Errorf("smoke: job ended %q: %s", st.State, st.Error)
	}
	fmt.Printf("smoke: %s done in %v\n%s", st.ID, st.Result.Elapsed.Round(time.Millisecond), st.Result.Text)
	return nil
}
