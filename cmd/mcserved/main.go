// Command mcserved serves the campaign registry over HTTP: every
// testbench campaign becomes reachable with a POST of its declarative
// spec, runs concurrently with streamed progress, and is cancellable
// mid-flight.
//
//	mcserved -addr :8080
//
//	curl localhost:8080/v1/campaigns                  # catalogue + schemas
//	curl -d '{"campaign":"fig4mc","seed":7}' localhost:8080/v1/campaigns
//	curl localhost:8080/v1/jobs/job-1                 # progress / result
//	curl localhost:8080/v1/jobs/job-1/events          # SSE progress stream
//	curl -X POST localhost:8080/v1/jobs/job-1/cancel  # abort mid-campaign
//
// With -store, the instance becomes a fabric coordinator: durable
// sharded jobs live in the store directory, survive kills, and are
// leased out span by span to workers over /v1/shards:
//
//	mcserved -addr :8080 -store /var/mc/jobs          # coordinator
//	mcserved -worker -peer http://host:8080           # worker instance
//
//	curl -d '{"spec":{"campaign":"yield","seed":7},"shards":4}' \
//	     localhost:8080/v1/fabric/jobs
//	curl localhost:8080/v1/fabric/jobs/fab-1          # phase + shard progress
//	curl localhost:8080/v1/fabric/jobs/fab-1/result   # finalized result
//	curl -X POST localhost:8080/v1/fabric/jobs/fab-1/cancel
//
// SIGINT/SIGTERM shut the server down gracefully, cancelling running
// campaigns through the same context plumbing the API's cancel uses; a
// killed coordinator resumes every incomplete fabric job from its last
// durable checkpoint on restart.
//
// -smoke starts the server on an ephemeral port, drives one small
// campaign through its own HTTP API and exits. -fabric-smoke does the
// same for the distributed fabric: a coordinator plus two workers over
// HTTP, one deliberately dropped lease, and a bit-identity check of the
// merged result against the in-process single-node run — the CI gates
// that prove both services end to end without external tooling.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/serve"
	"repro/internal/testbench"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		storeDir    = flag.String("store", "", "fabric job store directory; enables the coordinator endpoints")
		worker      = flag.Bool("worker", false, "run as a fabric worker instead of serving HTTP")
		peer        = flag.String("peer", "http://127.0.0.1:8080", "coordinator base URL (worker mode)")
		workerID    = flag.String("worker-id", "", "worker id in lease tokens (default host.pid)")
		logFormat   = flag.String("log-format", "", `structured request logging to stderr: "text" (key=value) or "json"; empty disables`)
		smoke       = flag.Bool("smoke", false, "start on an ephemeral port, run one small campaign through the HTTP API, and exit")
		fabricSmoke = flag.Bool("fabric-smoke", false, "run the distributed fabric end to end in-process (coordinator + two HTTP workers) and exit")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var err error
	switch {
	case *fabricSmoke:
		err = runFabricSmoke(ctx)
	case *worker:
		err = runWorker(ctx, *peer, *workerID)
	default:
		err = run(ctx, *addr, *storeDir, *logFormat, *smoke)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr, storeDir, logFormat string, smoke bool) error {
	if smoke {
		addr = "127.0.0.1:0"
	}
	if logFormat != "" && logFormat != serve.LogText && logFormat != serve.LogJSON {
		return fmt.Errorf("bad -log-format %q (want %q or %q)", logFormat, serve.LogText, serve.LogJSON)
	}
	srv := serve.New(ctx)
	defer srv.Close()
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if storeDir != "" {
		store, err := fabric.OpenStore(storeDir)
		if err != nil {
			return err
		}
		// The coordinator registers into the serve registry, so one
		// GET /metrics scrape covers both the job engine and the fabric.
		coord := fabric.NewCoordinator(fabric.Config{Store: store, Metrics: fabric.NewMetrics(srv.Metrics())})
		defer func() { _ = coord.Close() }() // shutdown path; job logs flush on every append
		if err := coord.RecoverAll(ctx); err != nil {
			return err
		}
		fh := serve.NewFabric(coord).Handler()
		mux.Handle("/v1/fabric/", fh)
		mux.Handle("/v1/shards/", fh)
		fmt.Printf("mcserved: fabric coordinator over %s (%d jobs recovered)\n", storeDir, len(coord.Jobs()))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: serve.AccessLog(os.Stderr, logFormat, mux)}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("mcserved listening on http://%s\n", ln.Addr())
	if smoke {
		err := smokeTest("http://" + ln.Addr().String())
		_ = hs.Close() // smoke exit path; the smokeTest error is the verdict
		<-errCh
		return err
	}
	select {
	case <-ctx.Done():
		fmt.Println("mcserved: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
		<-errCh
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// runWorker joins a remote coordinator's fabric and executes leased
// shards until the process is signalled.
func runWorker(ctx context.Context, peer, id string) error {
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	w := &fabric.Worker{Backend: &serve.HTTPBackend{Base: peer}, ID: id}
	fmt.Printf("mcserved: worker %s pulling shards from %s\n", id, peer)
	return w.Run(ctx)
}

// smokeTest exercises the service end to end: catalogue, submit, poll to
// completion, and print the campaign text.
func smokeTest(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/v1/campaigns")
	if err != nil {
		return err
	}
	var infos []struct {
		Name string `json:"name"`
	}
	err = json.NewDecoder(resp.Body).Decode(&infos)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		return errors.New("smoke: empty campaign catalogue")
	}
	fmt.Printf("smoke: catalogue lists %d campaigns\n", len(infos))

	spec := `{"campaign":"fig4mc","seed":7,"params":{"monitor":2,"dies":25,"cols":11}}`
	resp, err = client.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke: submit status %s", resp.Status)
	}
	fmt.Printf("smoke: submitted %s as %s\n", st.Spec.Campaign, st.ID)

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close() // body fully consumed; decode errors surface below
		if err != nil {
			return err
		}
		if st.State != serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: job still running after 60s (progress %d/%d)",
				st.Progress.Done, st.Progress.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != serve.StateDone || st.Result == nil {
		return fmt.Errorf("smoke: job ended %q: %s", st.State, st.Error)
	}
	fmt.Printf("smoke: %s done in %v\n%s", st.ID, st.Result.Elapsed.Round(time.Millisecond), st.Result.Text)

	// The metrics endpoint must expose the run in both formats.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close() // body fully consumed; errors surface below
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(text), "mccampaign_trials_total") {
		return fmt.Errorf("smoke: /metrics text scrape missing trial counter (status %s)", resp.Status)
	}
	resp, err = client.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	var snap struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	_ = resp.Body.Close() // body fully consumed; decode errors surface below
	if err != nil {
		return err
	}
	if len(snap.Families) == 0 {
		return errors.New("smoke: /metrics JSON scrape has no families")
	}
	fmt.Printf("smoke: /metrics exposes %d families in both formats\n", len(snap.Families))
	return nil
}

// runFabricSmoke proves the distributed fabric end to end: an HTTP
// coordinator over a throwaway store, a deliberately dropped lease, two
// workers that only speak the wire protocol, and a bit-identity check
// of the merged result against the in-process single-node run.
func runFabricSmoke(ctx context.Context) error {
	spec := testbench.Spec{
		Campaign:   "yield",
		Seed:       5,
		Chunk:      64,
		Checkpoint: 64,
		Params:     map[string]any{"n": 256},
	}
	fmt.Println("fabric-smoke: single-node baseline (yield, n=256)")
	base, err := testbench.Run(ctx, spec)
	if err != nil {
		return err
	}
	want, err := json.Marshal(base.Payload)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "mcfabric-smoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }() // throwaway store; best-effort cleanup
	store, err := fabric.OpenStore(dir)
	if err != nil {
		return err
	}
	coord := fabric.NewCoordinator(fabric.Config{Store: store, LeaseTTL: 300 * time.Millisecond})
	defer func() { _ = coord.Close() }() // smoke exit path; verdict already decided
	fh := serve.NewFabric(coord).Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: fh}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("fabric-smoke: coordinator on %s, store %s\n", baseURL, dir)

	client := &http.Client{Timeout: 10 * time.Second}
	sub := `{"id":"smoke","spec":{"campaign":"yield","seed":5,"chunk":64,"checkpoint":64,"params":{"n":256}},"shards":2}`
	resp, err := client.Post(baseURL+"/v1/fabric/jobs", "application/json", strings.NewReader(sub))
	if err != nil {
		return err
	}
	_ = resp.Body.Close() // status code is the verdict here
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("fabric-smoke: submit status %s", resp.Status)
	}
	fmt.Println("fabric-smoke: submitted job smoke across 2 shards")

	// Drop a lease on purpose: a ghost worker takes shard 0 and goes
	// silent; the TTL must requeue it for the real workers.
	backend := &serve.HTTPBackend{Base: baseURL, Client: client}
	ghost, ok, err := backend.Lease(ctx, "ghost")
	if err != nil || !ok {
		return fmt.Errorf("fabric-smoke: ghost lease: ok=%v err=%v", ok, err)
	}
	fmt.Printf("fabric-smoke: ghost worker holds shard %d and will never heartbeat\n", ghost.Shard)

	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &fabric.Worker{Backend: backend, ID: fmt.Sprintf("w%d", i), Poll: 20 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				fmt.Fprintf(os.Stderr, "fabric-smoke: worker %s: %v\n", w.ID, err)
			}
		}()
	}
	res, err := coord.Wait(ctx, "smoke")
	stopWorkers()
	wg.Wait()
	_ = hs.Close() // smoke exit path; the comparison below is the verdict
	<-serveErr
	if err != nil {
		return err
	}

	got, err := json.Marshal(res.Payload)
	if err != nil {
		return err
	}
	if string(got) != string(want) {
		return fmt.Errorf("fabric-smoke: merged payload differs from single-node run\nfabric:      %s\nsingle-node: %s", got, want)
	}
	if err := backend.Heartbeat(ctx, ghost, 0, nil); err == nil {
		return errors.New("fabric-smoke: ghost lease still valid after expiry")
	}
	fmt.Println("fabric-smoke: dropped lease was re-issued; ghost token refused")
	fmt.Printf("fabric-smoke: merged result bit-identical to single-node run\n%s", res.Text)
	return nil
}
