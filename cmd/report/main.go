// Command report runs the complete experiment suite and emits a fresh
// paper-vs-measured summary (the data behind EXPERIMENTS.md) to stdout.
//
// Usage:
//
//	go run ./cmd/report
package main

import (
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/testbench"
)

func main() {
	if err := testbench.WriteReport(os.Stdout, core.Default()); err != nil {
		log.Fatal(err)
	}
}
