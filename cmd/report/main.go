// Command report runs the complete experiment suite and emits a fresh
// paper-vs-measured summary (the data behind EXPERIMENTS.md) to stdout.
// With -campaign it instead runs a single registered campaign through
// the registry and prints its result (use mcmon -list for the
// catalogue); -json wraps that result in the uniform JSON envelope.
//
// Usage:
//
//	go run ./cmd/report
//	go run ./cmd/report -campaign yield
//	go run ./cmd/report -campaign fig8 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/testbench"
)

func main() {
	var (
		name    = flag.String("campaign", "", "run a single registered campaign instead of the full suite")
		asJSON  = flag.Bool("json", false, "with -campaign: print the full JSON result envelope")
		backend = flag.String("backend", "", "with -campaign: CUT backend (analytic or spice)")
		seed    = flag.Uint64("seed", 0, "with -campaign: campaign seed")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *name != "" {
		res, err := testbench.Run(ctx, testbench.Spec{Campaign: *name, Backend: *backend, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(res.Text)
		return
	}
	if err := testbench.WriteReport(os.Stdout, core.Default()); err != nil {
		log.Fatal(err)
	}
}
