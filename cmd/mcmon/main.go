// Command mcmon runs the repository's Monte-Carlo studies.
//
// Without -backend it studies the monitor under process variation: it
// traces one Table I boundary across Monte Carlo dies, prints the 95%
// envelope, and shows the spread histogram of the boundary position at a
// chosen x.
//
// With -backend it runs the component-level fault-table campaign on the
// selected CUT backend — the analytic Tow-Thomas model or the SPICE
// netlist engine — calibrating the acceptance threshold first:
//
//	mcmon -monitor 3 -dies 500 -x 0.4 -workers 4
//	mcmon -backend=spice          # reduced fault campaign on the netlist engine
//	mcmon -backend=analytic -tol 0.05
//
// Dies and faults fan out across the campaign worker pool (-workers 0 =
// all CPUs); the output is bit-identical at any worker count.
//
// -cpuprofile and -memprofile write pprof profiles of the campaign for
// `go tool pprof`, so hot spots can be inspected without editing code.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/prof"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/testbench"
)

func main() {
	var (
		monIdx  = flag.Int("monitor", 3, "Table I monitor number (1-6)")
		dies    = flag.Int("dies", 500, "number of Monte Carlo dies")
		x       = flag.Float64("x", 0.4, "x column for the spread histogram")
		seed    = flag.Uint64("seed", 1, "Monte Carlo seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
		backend = flag.String("backend", "", "run the fault-table campaign on a CUT backend: analytic or spice")
		tol     = flag.Float64("tol", 0.05, "calibration tolerance for the fault campaign")
	)
	profiler := prof.FlagVars(nil)
	flag.Parse()
	err := profiler.Around(func() error {
		if *backend == "" {
			return run(*monIdx, *dies, *x, *seed, *workers)
		}
		// The fault campaign ignores the monitor-study knobs; reject the
		// conflicting combination instead of silently dropping them.
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "monitor", "dies", "x", "seed":
				conflict = fmt.Errorf("-%s applies to the monitor study and conflicts with -backend", f.Name)
			}
		})
		if conflict != nil {
			return conflict
		}
		return runFaults(*backend, *tol, *workers)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmon:", err)
		os.Exit(1)
	}
}

// runFaults runs the component fault campaign on the chosen CUT backend.
func runFaults(backend string, tol float64, workers int) error {
	sys, err := core.SystemForBackend(backend)
	if err != nil {
		return err
	}
	fmt.Printf("CUT backend: %s\n", sys.CUT.Describe())
	dec, err := sys.CalibrateFromTolerance(tol, 9)
	if err != nil {
		return err
	}
	tab, err := testbench.RunFaultTableWorkers(sys, dec, testbench.DefaultFaultSet(), workers)
	if err != nil {
		return err
	}
	fmt.Print(tab.Render())
	return nil
}

func run(monIdx, dies int, x float64, seed uint64, workers int) error {
	if monIdx < 1 || monIdx > 6 {
		return fmt.Errorf("monitor number %d out of 1-6", monIdx)
	}
	env, err := testbench.RunFig4MCWorkers(monIdx-1, dies, 21, seed, workers)
	if err != nil {
		return err
	}
	fmt.Print(env.Render())

	// Spread histogram at one column — the same per-die trial, fanned out
	// on the campaign engine.
	cfg := monitor.TableI()[monIdx-1]
	a := monitor.MustAnalytic(cfg)
	variation := mos.Default65nmVariation()
	src := rng.New(seed + 1)
	streams := make([]*rng.Stream, dies)
	for d := range streams {
		streams[d] = src.Split(uint64(d))
	}
	boundary, err := campaign.Run(campaign.Engine{Workers: workers}, dies,
		func(d int) (float64, error) {
			die := variation.SampleDie(streams[d])
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			if y, ok := a.WithDevices(devs).BoundaryY(x, 0, 1); ok {
				return y, nil
			}
			return math.NaN(), nil
		})
	if err != nil {
		return err
	}
	var ys []float64
	for _, y := range boundary {
		if !math.IsNaN(y) {
			ys = append(ys, y)
		}
	}
	if len(ys) == 0 {
		fmt.Printf("\nno boundary crossing at x = %.3f\n", x)
		return nil
	}
	sum := stat.Summarize(ys)
	fmt.Printf("\nboundary y at x = %.3f over %d dies: mean %.4f, std %.4f, 95%% [%.4f, %.4f]\n",
		x, len(ys), sum.Mean, sum.Std, sum.P2_5, sum.P97_5)
	h := stat.NewHistogram(sum.Min-1e-6, sum.Max+1e-6, 15)
	for _, y := range ys {
		h.Push(y)
	}
	fmt.Print(h.ASCII(40))
	return nil
}
