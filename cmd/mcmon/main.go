// Command mcmon studies the monitor under process variation: it traces
// one Table I boundary across Monte Carlo dies, prints the 95% envelope,
// and shows the spread histogram of the boundary position at a chosen x.
//
// Usage:
//
//	mcmon -monitor 3 -dies 500 -x 0.4 -workers 4
//
// Dies fan out across the campaign worker pool (-workers 0 = all CPUs);
// the output is bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/rng"
	"repro/internal/stat"
	"repro/internal/testbench"
)

func main() {
	var (
		monIdx  = flag.Int("monitor", 3, "Table I monitor number (1-6)")
		dies    = flag.Int("dies", 500, "number of Monte Carlo dies")
		x       = flag.Float64("x", 0.4, "x column for the spread histogram")
		seed    = flag.Uint64("seed", 1, "Monte Carlo seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
	)
	flag.Parse()
	if err := run(*monIdx, *dies, *x, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "mcmon:", err)
		os.Exit(1)
	}
}

func run(monIdx, dies int, x float64, seed uint64, workers int) error {
	if monIdx < 1 || monIdx > 6 {
		return fmt.Errorf("monitor number %d out of 1-6", monIdx)
	}
	env, err := testbench.RunFig4MCWorkers(monIdx-1, dies, 21, seed, workers)
	if err != nil {
		return err
	}
	fmt.Print(env.Render())

	// Spread histogram at one column — the same per-die trial, fanned out
	// on the campaign engine.
	cfg := monitor.TableI()[monIdx-1]
	a := monitor.MustAnalytic(cfg)
	variation := mos.Default65nmVariation()
	src := rng.New(seed + 1)
	streams := make([]*rng.Stream, dies)
	for d := range streams {
		streams[d] = src.Split(uint64(d))
	}
	boundary, err := campaign.Run(campaign.Engine{Workers: workers}, dies,
		func(d int) (float64, error) {
			die := variation.SampleDie(streams[d])
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			if y, ok := a.WithDevices(devs).BoundaryY(x, 0, 1); ok {
				return y, nil
			}
			return math.NaN(), nil
		})
	if err != nil {
		return err
	}
	var ys []float64
	for _, y := range boundary {
		if !math.IsNaN(y) {
			ys = append(ys, y)
		}
	}
	if len(ys) == 0 {
		fmt.Printf("\nno boundary crossing at x = %.3f\n", x)
		return nil
	}
	sum := stat.Summarize(ys)
	fmt.Printf("\nboundary y at x = %.3f over %d dies: mean %.4f, std %.4f, 95%% [%.4f, %.4f]\n",
		x, len(ys), sum.Mean, sum.Std, sum.P2_5, sum.P97_5)
	h := stat.NewHistogram(sum.Min-1e-6, sum.Max+1e-6, 15)
	for _, y := range ys {
		h.Push(y)
	}
	fmt.Print(h.ASCII(40))
	return nil
}
