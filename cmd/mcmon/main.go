// Command mcmon runs the repository's Monte-Carlo studies on the
// campaign registry.
//
// Without flags it studies the monitor under process variation: it
// traces one Table I boundary across Monte Carlo dies, prints the 95%
// envelope, and shows the spread histogram of the boundary position at a
// chosen x.
//
// -campaign runs any registered campaign from its declarative spec;
// -params takes the campaign's JSON params, -list enumerates the
// catalogue (names, param schemas, defaults) straight from the registry:
//
//	mcmon -list
//	mcmon -monitor 3 -dies 500 -x 0.4 -workers 4
//	mcmon -campaign noisesweep -params '{"trials":5}' -workers 8
//	mcmon -campaign faults -backend=spice     # fault campaign on the netlist engine
//	mcmon -backend=spice                      # shorthand for the same
//
// Campaign trials fan out across the campaign worker pool (-workers 0 =
// all CPUs); the output is bit-identical at any worker count. Ctrl-C
// cancels the campaign mid-flight through the same context plumbing the
// mcserved HTTP service uses.
//
// -cpuprofile and -memprofile write pprof profiles of the campaign for
// `go tool pprof`, so hot spots can be inspected without editing code.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/prof"
	"repro/internal/stat"
	"repro/internal/testbench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "enumerate registered campaigns, param schemas and defaults, then exit")
		name     = flag.String("campaign", "", "registered campaign to run (see -list)")
		params   = flag.String("params", "", "campaign params as JSON (defaults apply to omitted fields)")
		backend  = flag.String("backend", "", "CUT backend for the campaign: "+strings.Join(core.Backends(), " or ")+" (implies -campaign faults when none is named)")
		scalar   = flag.Bool("scalar", false, "run the retained per-tick scalar signature engine")
		monIdx   = flag.Int("monitor", 3, "Table I monitor number (1-6) for the monitor study")
		dies     = flag.Int("dies", 500, "number of Monte Carlo dies for the monitor study")
		x        = flag.Float64("x", 0.4, "x column for the monitor study's spread histogram")
		seed     = flag.Uint64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
		tol      = flag.Float64("tol", 0.05, "calibration tolerance for the fault campaign shorthand")
		progress = flag.Bool("progress", false, "print live trial progress to stderr")
	)
	profiler := prof.FlagVars(nil)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err := profiler.Around(func() error {
		switch {
		case *list:
			return runList()
		case *name != "" || *backend != "":
			// The campaign path takes its knobs from the spec; reject the
			// monitor-study flags (and -tol, which only feeds the faults
			// shorthand's calibration) instead of silently dropping them.
			var conflict error
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "monitor", "dies", "x":
					conflict = fmt.Errorf("-%s applies to the monitor study and conflicts with -campaign/-backend (use -params)", f.Name)
				case "tol":
					if *name != "" {
						conflict = fmt.Errorf("-tol only feeds the -backend fault shorthand; with -campaign pass the tolerance in -params")
					}
				}
			})
			if conflict != nil {
				return conflict
			}
			return runCampaign(ctx, *name, *params, *backend, *scalar, *seed, *workers, *tol, *progress)
		default:
			// The monitor study ignores the campaign knobs; reject the
			// conflicting combination instead of silently dropping them.
			var conflict error
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "params", "scalar", "tol":
					conflict = fmt.Errorf("-%s needs -campaign or -backend", f.Name)
				}
			})
			if conflict != nil {
				return conflict
			}
			return runMonitorStudy(ctx, *monIdx, *dies, *x, *seed, *workers)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmon:", err)
		os.Exit(1)
	}
}

// runList prints the registry catalogue.
func runList() error {
	fmt.Println("registered campaigns (spec fields: campaign, backend, seed, workers, chunk, scalar, params):")
	for _, info := range testbench.List() {
		fmt.Printf("\n  %-11s %s\n", info.Name, info.Summary)
		for _, p := range info.Params {
			def, err := json.Marshal(p.Default)
			if err != nil {
				def = []byte("?")
			}
			fmt.Printf("      %-16s %-10s = %s\n", p.Name, p.Type, def)
		}
	}
	return nil
}

// runCampaign executes one registered campaign from its spec pieces.
// An empty name with a backend set keeps the historic shorthand: the
// component fault campaign on that backend.
func runCampaign(ctx context.Context, name, params, backend string, scalar bool, seed uint64, workers int, tol float64, progress bool) error {
	spec := testbench.Spec{
		Campaign: name,
		Backend:  backend,
		Seed:     seed,
		Workers:  workers,
		Scalar:   scalar,
	}
	if params != "" {
		spec.Params = json.RawMessage(params)
	}
	if name == "" {
		spec.Campaign = "faults"
		if params == "" {
			spec.Params = testbench.FaultsParams{Tol: tol}
		}
	}
	var opts []testbench.Option
	if progress {
		opts = append(opts, testbench.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	res, err := testbench.Run(ctx, spec, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s (backend %s, %v)\n", res.Spec.Campaign,
		orDefault(res.Spec.Backend, core.Backends()[0]), res.Elapsed.Round(1e6))
	if res.Text == "" {
		return json.NewEncoder(os.Stdout).Encode(res.Payload)
	}
	fmt.Print(res.Text)
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// runMonitorStudy is the historic default: the Fig. 4 MC envelope plus a
// boundary spread histogram, both on the campaign engine.
func runMonitorStudy(ctx context.Context, monIdx, dies int, x float64, seed uint64, workers int) error {
	if monIdx < 1 || monIdx > 6 {
		return fmt.Errorf("monitor number %d out of 1-6", monIdx)
	}
	env, err := testbench.Run(ctx, testbench.Spec{
		Campaign: "fig4mc",
		Seed:     seed,
		Workers:  workers,
		Params:   testbench.Fig4MCParams{Monitor: monIdx - 1, Dies: dies, Cols: 21},
	})
	if err != nil {
		return err
	}
	fmt.Print(env.Text)
	return spreadStudy(ctx, os.Stdout, monIdx, dies, x, seed, workers)
}

// spreadFineBins sizes the quantile histogram of the spread study: the
// 95% interval is read off a 2^14-bin histogram over the spread range,
// so its absolute error is bounded by range/2^14 — orders of magnitude
// under the %.4f the study prints for any boundary spread the monitors
// produce.
const spreadFineBins = 1 << 14

// spreadStudy prints the boundary spread histogram at one x column,
// fully streamed: no per-die slice is ever retained. Pass one folds
// exact extrema and running moments (Welford); pass two re-derives the
// same deterministic dies into two single-pass histograms over the now
// known range — the 15-bin display histogram (binned exactly as the
// materializing path binned, so the bars are bit-identical) and a fine
// quantile histogram for the 95% interval. Peak memory is
// O(workers + chunk + bins) instead of O(dies).
func spreadStudy(ctx context.Context, w io.Writer, monIdx, dies int, x float64, seed uint64, workers int) error {
	cfg := monitor.TableI()[monIdx-1]
	a := monitor.MustAnalytic(cfg)
	variation := mos.Default65nmVariation()
	eng := campaign.Engine{Workers: workers, Seed: seed + 1}
	// Every die derives its stream inside the worker as a pure function
	// of (seed, die), so the two passes see identical values.
	trial := func(d int) (float64, error) {
		die := variation.SampleDie(eng.Stream(d))
		devs := a.Devices()
		for j := range devs {
			devs[j] = die.Perturb(devs[j])
		}
		if y, ok := a.WithDevices(devs).BoundaryY(x, 0, 1); ok {
			return y, nil
		}
		return math.NaN(), nil
	}
	moments, err := campaign.Reduce(ctx, eng, dies,
		campaign.Reducer[float64, *stat.Running]{
			New: func() *stat.Running { return new(stat.Running) },
			Fold: func(acc *stat.Running, _ int, y float64) *stat.Running {
				if !math.IsNaN(y) {
					acc.Push(y)
				}
				return acc
			},
			Merge: func(into, next *stat.Running) *stat.Running {
				into.Merge(*next)
				return into
			},
		}, trial)
	if err != nil {
		return err
	}
	if moments.N() == 0 {
		_, err := fmt.Fprintf(w, "\nno boundary crossing at x = %.3f\n", x)
		return err
	}
	// Same display range and binning formula as the historic
	// materialize-then-bin path.
	lo, hi := moments.Min()-1e-6, moments.Max()+1e-6
	type hists struct{ disp, fine *stat.StreamingHistogram }
	spread, err := campaign.Reduce(ctx, eng, dies,
		campaign.Reducer[float64, hists]{
			New: func() hists {
				return hists{
					disp: stat.NewStreamingHistogram(lo, hi, 15),
					fine: stat.NewStreamingHistogram(lo, hi, spreadFineBins),
				}
			},
			Fold: func(acc hists, _ int, y float64) hists {
				if !math.IsNaN(y) {
					acc.disp.Push(y)
					acc.fine.Push(y)
				}
				return acc
			},
			Merge: func(into, next hists) hists {
				into.disp.Merge(next.disp)
				into.fine.Merge(next.fine)
				return into
			},
		}, trial)
	if err != nil {
		return err
	}
	p2_5, err := spread.fine.Quantile(0.025)
	if err != nil {
		return err
	}
	p97_5, err := spread.fine.Quantile(0.975)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nboundary y at x = %.3f over %d dies: mean %.4f, std %.4f, 95%% [%.4f, %.4f]\n",
		x, moments.N(), moments.Mean(), moments.StdDev(), p2_5, p97_5)
	b.WriteString(spread.disp.ASCII(40))
	_, err = io.WriteString(w, b.String())
	return err
}
