// Command mcmon runs the repository's Monte-Carlo studies on the
// campaign registry.
//
// Without flags it studies the monitor under process variation: it
// traces one Table I boundary across Monte Carlo dies, prints the 95%
// envelope, and shows the spread histogram of the boundary position at a
// chosen x.
//
// -campaign runs any registered campaign from its declarative spec;
// -params takes the campaign's JSON params, -list enumerates the
// catalogue (names, param schemas, defaults) straight from the registry:
//
//	mcmon -list
//	mcmon -monitor 3 -dies 500 -x 0.4 -workers 4
//	mcmon -campaign noisesweep -params '{"trials":5}' -workers 8
//	mcmon -campaign faults -backend=spice     # fault campaign on the netlist engine
//	mcmon -backend=spice                      # shorthand for the same
//
// Campaign trials fan out across the campaign worker pool (-workers 0 =
// all CPUs); the output is bit-identical at any worker count. Ctrl-C
// cancels the campaign mid-flight through the same context plumbing the
// mcserved HTTP service uses.
//
// -cpuprofile and -memprofile write pprof profiles of the campaign for
// `go tool pprof`, so hot spots can be inspected without editing code.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/prof"
	"repro/internal/stat"
	"repro/internal/testbench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "enumerate registered campaigns, param schemas and defaults, then exit")
		name     = flag.String("campaign", "", "registered campaign to run (see -list)")
		params   = flag.String("params", "", "campaign params as JSON (defaults apply to omitted fields)")
		backend  = flag.String("backend", "", "CUT backend for the campaign: "+strings.Join(core.Backends(), " or ")+" (implies -campaign faults when none is named)")
		scalar   = flag.Bool("scalar", false, "run the retained per-tick scalar signature engine")
		monIdx   = flag.Int("monitor", 3, "Table I monitor number (1-6) for the monitor study")
		dies     = flag.Int("dies", 500, "number of Monte Carlo dies for the monitor study")
		x        = flag.Float64("x", 0.4, "x column for the monitor study's spread histogram")
		seed     = flag.Uint64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
		tol      = flag.Float64("tol", 0.05, "calibration tolerance for the fault campaign shorthand")
		progress = flag.Bool("progress", false, "print live trial progress to stderr")
	)
	profiler := prof.FlagVars(nil)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err := profiler.Around(func() error {
		switch {
		case *list:
			return runList()
		case *name != "" || *backend != "":
			// The campaign path takes its knobs from the spec; reject the
			// monitor-study flags (and -tol, which only feeds the faults
			// shorthand's calibration) instead of silently dropping them.
			var conflict error
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "monitor", "dies", "x":
					conflict = fmt.Errorf("-%s applies to the monitor study and conflicts with -campaign/-backend (use -params)", f.Name)
				case "tol":
					if *name != "" {
						conflict = fmt.Errorf("-tol only feeds the -backend fault shorthand; with -campaign pass the tolerance in -params")
					}
				}
			})
			if conflict != nil {
				return conflict
			}
			return runCampaign(ctx, *name, *params, *backend, *scalar, *seed, *workers, *tol, *progress)
		default:
			// The monitor study ignores the campaign knobs; reject the
			// conflicting combination instead of silently dropping them.
			var conflict error
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "params", "scalar", "tol":
					conflict = fmt.Errorf("-%s needs -campaign or -backend", f.Name)
				}
			})
			if conflict != nil {
				return conflict
			}
			return runMonitorStudy(ctx, *monIdx, *dies, *x, *seed, *workers)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmon:", err)
		os.Exit(1)
	}
}

// runList prints the registry catalogue.
func runList() error {
	fmt.Println("registered campaigns (spec fields: campaign, backend, seed, workers, chunk, scalar, params):")
	for _, info := range testbench.List() {
		fmt.Printf("\n  %-11s %s\n", info.Name, info.Summary)
		for _, p := range info.Params {
			def, err := json.Marshal(p.Default)
			if err != nil {
				def = []byte("?")
			}
			fmt.Printf("      %-16s %-10s = %s\n", p.Name, p.Type, def)
		}
	}
	return nil
}

// runCampaign executes one registered campaign from its spec pieces.
// An empty name with a backend set keeps the historic shorthand: the
// component fault campaign on that backend.
func runCampaign(ctx context.Context, name, params, backend string, scalar bool, seed uint64, workers int, tol float64, progress bool) error {
	spec := testbench.Spec{
		Campaign: name,
		Backend:  backend,
		Seed:     seed,
		Workers:  workers,
		Scalar:   scalar,
	}
	if params != "" {
		spec.Params = json.RawMessage(params)
	}
	if name == "" {
		spec.Campaign = "faults"
		if params == "" {
			spec.Params = testbench.FaultsParams{Tol: tol}
		}
	}
	var opts []testbench.Option
	if progress {
		opts = append(opts, testbench.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	res, err := testbench.Run(ctx, spec, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s (backend %s, %v)\n", res.Spec.Campaign,
		orDefault(res.Spec.Backend, core.Backends()[0]), res.Elapsed.Round(1e6))
	if res.Text == "" {
		return json.NewEncoder(os.Stdout).Encode(res.Payload)
	}
	fmt.Print(res.Text)
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// runMonitorStudy is the historic default: the Fig. 4 MC envelope plus a
// boundary spread histogram, both on the campaign engine.
func runMonitorStudy(ctx context.Context, monIdx, dies int, x float64, seed uint64, workers int) error {
	if monIdx < 1 || monIdx > 6 {
		return fmt.Errorf("monitor number %d out of 1-6", monIdx)
	}
	env, err := testbench.Run(ctx, testbench.Spec{
		Campaign: "fig4mc",
		Seed:     seed,
		Workers:  workers,
		Params:   testbench.Fig4MCParams{Monitor: monIdx - 1, Dies: dies, Cols: 21},
	})
	if err != nil {
		return err
	}
	fmt.Print(env.Text)

	// Spread histogram at one column — the same per-die trial, streamed
	// through the campaign reduction engine: every die derives its stream
	// inside the worker (no O(dies) pre-pass) and only the crossings are
	// kept, merged in die order.
	cfg := monitor.TableI()[monIdx-1]
	a := monitor.MustAnalytic(cfg)
	variation := mos.Default65nmVariation()
	eng := campaign.Engine{Workers: workers, Seed: seed + 1}
	ys, err := campaign.Reduce(ctx, eng, dies,
		campaign.Reducer[float64, []float64]{
			Fold: func(acc []float64, _ int, y float64) []float64 {
				if !math.IsNaN(y) {
					acc = append(acc, y)
				}
				return acc
			},
			Merge: func(into, next []float64) []float64 { return append(into, next...) },
		},
		func(d int) (float64, error) {
			die := variation.SampleDie(eng.Stream(d))
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			if y, ok := a.WithDevices(devs).BoundaryY(x, 0, 1); ok {
				return y, nil
			}
			return math.NaN(), nil
		})
	if err != nil {
		return err
	}
	if len(ys) == 0 {
		fmt.Printf("\nno boundary crossing at x = %.3f\n", x)
		return nil
	}
	sum := stat.Summarize(ys)
	fmt.Printf("\nboundary y at x = %.3f over %d dies: mean %.4f, std %.4f, 95%% [%.4f, %.4f]\n",
		x, len(ys), sum.Mean, sum.Std, sum.P2_5, sum.P97_5)
	h := stat.NewHistogram(sum.Min-1e-6, sum.Max+1e-6, 15)
	for _, y := range ys {
		h.Push(y)
	}
	fmt.Print(h.ASCII(40))
	return nil
}
