package main

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/mos"
	"repro/internal/stat"
)

// materializedSpread is the historic spread-study implementation the
// streaming one replaced: collect every non-NaN crossing, Summarize,
// then bin in a second pass over the retained slice. Kept here as the
// reference the pin test compares against byte for byte.
func materializedSpread(t *testing.T, monIdx, dies int, x float64, seed uint64) string {
	t.Helper()
	cfg := monitor.TableI()[monIdx-1]
	a := monitor.MustAnalytic(cfg)
	variation := mos.Default65nmVariation()
	eng := campaign.Engine{Workers: 1, Seed: seed + 1}
	ys, err := campaign.Reduce(context.Background(), eng, dies,
		campaign.Reducer[float64, []float64]{
			Fold: func(acc []float64, _ int, y float64) []float64 {
				if !math.IsNaN(y) {
					acc = append(acc, y)
				}
				return acc
			},
			Merge: func(into, next []float64) []float64 { return append(into, next...) },
		},
		func(d int) (float64, error) {
			die := variation.SampleDie(eng.Stream(d))
			devs := a.Devices()
			for j := range devs {
				devs[j] = die.Perturb(devs[j])
			}
			if y, ok := a.WithDevices(devs).BoundaryY(x, 0, 1); ok {
				return y, nil
			}
			return math.NaN(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if len(ys) == 0 {
		fmt.Fprintf(&b, "\nno boundary crossing at x = %.3f\n", x)
		return b.String()
	}
	sum := stat.Summarize(ys)
	fmt.Fprintf(&b, "\nboundary y at x = %.3f over %d dies: mean %.4f, std %.4f, 95%% [%.4f, %.4f]\n",
		x, len(ys), sum.Mean, sum.Std, sum.P2_5, sum.P97_5)
	h := stat.NewHistogram(sum.Min-1e-6, sum.Max+1e-6, 15)
	for _, y := range ys {
		h.Push(y)
	}
	b.WriteString(h.ASCII(40))
	return b.String()
}

// TestSpreadStudyPinnedToMaterializedPath pins the mcmon default run's
// spread output: the streamed two-pass study (running moments + two
// single-pass histograms) renders byte-identical text to the historic
// materializing implementation, at every worker count.
func TestSpreadStudyPinnedToMaterializedPath(t *testing.T) {
	const (
		monIdx = 3
		dies   = 500
		x      = 0.4
		seed   = uint64(1)
	)
	want := materializedSpread(t, monIdx, dies, x, seed)
	if !strings.Contains(want, "boundary y at x = 0.400 over") {
		t.Fatalf("reference output malformed:\n%s", want)
	}
	for _, w := range []int{1, 4, 8} {
		var got strings.Builder
		if err := spreadStudy(context.Background(), &got, monIdx, dies, x, seed, w); err != nil {
			t.Fatal(err)
		}
		if got.String() != want {
			t.Fatalf("workers=%d: streamed spread study diverged from the materializing path\n--- streamed ---\n%s--- materialized ---\n%s",
				w, got.String(), want)
		}
	}
}

// The no-crossing branch still renders the historic message.
func TestSpreadStudyNoCrossing(t *testing.T) {
	var got strings.Builder
	// x far outside the unit square: no boundary crossing exists.
	if err := spreadStudy(context.Background(), &got, 3, 8, 40.0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.String(), "no boundary crossing") {
		t.Fatalf("output = %q", got.String())
	}
}
