// Command mclint runs the repository's static-analysis suite
// (internal/lint): stdlib-only analyzers that enforce the engine's
// determinism (detrand, maporder), cancellation (ctxflow), hot-path
// allocation (hotalloc), and error-handling (errdrop) contracts.
//
// Usage:
//
//	mclint [-C dir] [-json] [-list]
//
// mclint analyzes every non-test package of the module rooted at -C
// (default "."). Findings print one per line as
// "file:line:col: [analyzer] message"; -json emits the same findings as
// a JSON array for CI artifacts. The exit status is 1 when findings
// exist, 2 on driver errors, 0 on a clean tree.
//
// A finding is suppressed by a justified directive on its line or the
// line above:
//
//	//mclint:<analyzer> <why this occurrence is safe>
//
// Bare directives (no justification) and unknown analyzer names are
// themselves findings, so the escape hatch stays auditable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	root := flag.String("C", ".", "module root to analyze")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	pkgs, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers())

	// Report paths relative to the analyzed root so output is stable
	// across checkouts (and readable in CI logs and artifacts).
	absRoot, err := filepath.Abs(*root)
	if err == nil {
		for i := range findings {
			if rel, rerr := filepath.Rel(absRoot, findings[i].File); rerr == nil {
				findings[i].File = rel
			}
		}
	}

	if *asJSON {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mclint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "mclint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
