// Command sigcap captures the digital signature of a CUT with a given f0
// deviation, prints it in the paper's {(Z_i, Δ_i)} notation, compares it
// against the golden signature, and reports the NDF. With -out it also
// writes the binary readout format.
//
// Usage:
//
//	sigcap -shift 0.10
//	sigcap -shift 0.05 -noise 0.005 -clock 10e6 -bits 16 -out sig.bin
//	sigcap -in sig.bin              # re-score a stored signature
//	sigcap -shift 0.10 -json out.json
//	sigcap -shift 0.10 -backend spice   # capture from the SPICE netlist engine
//	sigcap -shift 0.10 -cpuprofile cpu.out  # profile the capture path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ndf"
	"repro/internal/prof"
	"repro/internal/rng"
	"repro/internal/signature"
)

func main() {
	var (
		shift   = flag.Float64("shift", 0.10, "fractional f0 deviation of the CUT")
		sigma   = flag.Float64("noise", 0, "measurement noise sigma in volts (paper: 0.005)")
		clock   = flag.Float64("clock", 10e6, "master clock frequency, Hz")
		bits    = flag.Int("bits", 16, "time counter width")
		seed    = flag.Uint64("seed", 1, "noise seed")
		out     = flag.String("out", "", "write the binary signature to this file")
		jsonOut = flag.String("json", "", "write the JSON signature to this file")
		in      = flag.String("in", "", "score a stored binary signature instead of capturing")
		backend = flag.String("backend", core.Backends()[0], "CUT backend: "+strings.Join(core.Backends(), " or "))
	)
	profiler := prof.FlagVars(nil)
	flag.Parse()
	err := profiler.Around(func() error {
		return run(*shift, *sigma, *clock, *bits, *seed, *out, *jsonOut, *in, *backend)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigcap:", err)
		os.Exit(1)
	}
}

func run(shift, sigma, clock float64, bits int, seed uint64, out, jsonOut, in, backend string) error {
	sys, err := core.SystemForBackend(backend)
	if err != nil {
		return err
	}
	sys.Capture = signature.CaptureConfig{ClockHz: clock, CounterBits: bits}
	var sig *signature.Signature
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		sig = &signature.Signature{}
		if err := sig.UnmarshalBinary(data); err != nil {
			return err
		}
		if err := sig.Validate(); err != nil {
			return fmt.Errorf("stored signature invalid: %w", err)
		}
		fmt.Printf("loaded signature from %s\n", in)
	} else {
		var noise *rng.Stream
		if sigma > 0 {
			noise = rng.New(seed)
		}
		cut, err := sys.Shifted(shift)
		if err != nil {
			return err
		}
		sig, err = sys.CapturedSignature(cut, sigma, noise)
		if err != nil {
			return err
		}
	}
	golden, err := sys.GoldenSignature()
	if err != nil {
		return err
	}
	v, err := ndf.NDF(sig, golden)
	if err != nil {
		return err
	}
	fmt.Printf("CUT: f0 %+.1f%%, noise sigma %g V, clock %g Hz, %d-bit counter\n",
		shift*100, sigma, clock, bits)
	fmt.Printf("signature (%d intervals over %.0f µs):\n  %s\n",
		sig.NumZones(), sig.Period*1e6, sig)
	fmt.Printf("zones traversed (paper notation):\n")
	for _, e := range sig.Entries {
		fmt.Printf("  %s for %7.2f µs\n", sys.Bank.FormatCode(e.Code), e.Dur*1e6)
	}
	fmt.Printf("NDF vs golden = %.4f\n", v)
	if out != "" {
		data, err := sig.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("binary signature written to %s (%d bytes)\n", out, len(data))
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(sig, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("JSON signature written to %s (%d bytes)\n", jsonOut, len(data))
	}
	return nil
}
