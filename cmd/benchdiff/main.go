// Command benchdiff compares two benchmark snapshots in `go test -json`
// event form (the files `make bench-json` emits: BENCH_4.json,
// BENCH_5.json, ...) and reports the per-benchmark ns/op movement — a
// dependency-free, benchstat-style regression gate for the CI pipeline.
//
// Benchmarks matching -pin are the performance contract: if any of them
// regresses by more than -max (a ratio; 1.30 = +30%), benchdiff exits
// non-zero. Everything else is reported for trend-watching but never
// fails the run — single-iteration snapshots are noisy, so only the
// hot-path pins with deliberate headroom gate.
//
//	benchdiff -old BENCH_4.json -new BENCH_5.json
//	benchdiff -old BENCH_4.json -new BENCH_5.json -pin 'Transient|Reduce' -max 1.5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultPins are the hot-path benchmarks the repository treats as a
// performance contract: the SPICE linear fast path, the per-trial SPICE
// campaign unit and its template/batched trial engines, the batched
// signature engine, the streaming reduction engine, the streaming
// statistics (quantile-sketch push and the streamed null calibration),
// and the span reduction checkpointing at the fabric's default cadence.
const defaultPins = "TransientTowThomasLinear$|SpiceCUTOutput$|SpiceTrialEngine$|SpiceTrialEngineBatch$|FaultTableSpice$|SignatureCaptureBatched$|AveragedNDFBatched$|CampaignReduce1M$|BankClassifyBatch$|QuantileSketchPush$|NoiseNullCalibration$|CheckpointOverhead/default$"

func main() {
	var (
		oldPath = flag.String("old", "BENCH_4.json", "baseline snapshot (go test -json)")
		newPath = flag.String("new", "BENCH_5.json", "candidate snapshot (go test -json)")
		pin     = flag.String("pin", defaultPins, "regexp of pinned benchmarks that gate the exit status")
		max     = flag.Float64("max", 1.30, "maximum allowed new/old ns-per-op ratio for pinned benchmarks")
	)
	flag.Parse()
	pinRe, err := regexp.Compile(*pin)
	if err != nil {
		fatal(err)
	}
	oldNs, err := parseSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newNs, err := parseSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	failed := 0
	for _, name := range names {
		nv := newNs[name]
		ov, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %8s\n", name, "-", nv, "new")
			continue
		}
		ratio := nv / ov
		mark := ""
		if pinRe.MatchString("Benchmark" + name) {
			mark = " [pinned]"
			if ratio > *max {
				mark = " [REGRESSED]"
				failed++
			}
		}
		fmt.Printf("%-34s %14.0f %14.0f %7.2fx%s\n", name, ov, nv, ratio, mark)
	}
	gone := make([]string, 0, len(oldNs))
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-34s %14.0f %14s %8s\n", name, oldNs[name], "-", "gone")
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d pinned benchmark(s) regressed more than %.0f%%\n",
			failed, (*max-1)*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// parseSnapshot extracts ns/op per benchmark from a `go test -json`
// stream. test2json splits a benchmark's result line across several
// output events (the padded name and the measurements arrive
// separately), so output is reassembled per test before line parsing.
// When a benchmark appears several times (rerun snapshots), the minimum
// is kept — the least-noise estimate, as benchstat does for
// single-value columns.
func parseSnapshot(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; scanner errors surface below
	buffers := map[string]*strings.Builder{}
	order := []string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action  string `json:"Action"`
			Package string `json:"Package"`
			Test    string `json:"Test"`
			Output  string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate stray non-JSON lines
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "/" + ev.Test
		b, ok := buffers[key]
		if !ok {
			b = &strings.Builder{}
			buffers[key] = b
			order = append(order, key)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, key := range order {
		for _, line := range strings.Split(buffers[key].String(), "\n") {
			name, ns, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if prev, seen := out[name]; !seen || ns < prev {
				out[name] = ns
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseBenchLine recognizes "BenchmarkName[-procs] <tab> N <tab> ns/op
// ..." result lines and returns the bare name (procs suffix stripped)
// and the ns/op value.
func parseBenchLine(line string) (name string, ns float64, ok bool) {
	line = strings.TrimSuffix(line, "\n")
	if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	// name, iterations, value, "ns/op", [metric pairs...]
	if len(fields) < 4 {
		return "", 0, false
	}
	name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}
