// Command xyzone regenerates the paper's tables and figures from the
// reproduction pipeline and prints them as text or CSV. Every experiment
// is dispatched through the campaign registry, so the flags here are a
// thin veneer over the same declarative specs mcmon -campaign and the
// mcserved HTTP service accept.
//
// Usage:
//
//	xyzone -tab 1                 # TABLE I input configurations
//	xyzone -fig 1 [-shift 0.10]   # Lissajous traces (CSV)
//	xyzone -fig 4                 # monitor control curves (CSV)
//	xyzone -fig 4 -mc -monitor 3  # Monte Carlo envelope of one curve
//	xyzone -fig 6                 # zone codification and traversals
//	xyzone -fig 7 [-shift 0.10]   # signature chronogram + NDF
//	xyzone -fig 8 [-tol 0.05]     # NDF sweep with PASS/FAIL bands
//	xyzone -noise                 # noise detection experiment
//	xyzone -abl linear|counter|regress
//	xyzone -ext q|faults|temp|spectral|metric|noisesweep|yield|stimopt|selftest|corners
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/testbench"
	"repro/internal/zone"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (1, 4, 6, 7, 8)")
		tab    = flag.Int("tab", 0, "table number to regenerate (1)")
		shift  = flag.Float64("shift", 0.10, "fractional f0 deviation for defective CUT")
		tol    = flag.Float64("tol", 0.05, "tolerance band for Fig. 8 calibration")
		points = flag.Int("points", 41, "sweep/trace resolution")
		mc     = flag.Bool("mc", false, "with -fig 4: emit a Monte Carlo envelope")
		monIdx = flag.Int("monitor", 3, "with -mc: Table I monitor number (1-6)")
		dies   = flag.Int("dies", 200, "with -mc: Monte Carlo die count")
		noise  = flag.Bool("noise", false, "run the noise detection experiment")
		abl    = flag.String("abl", "", "ablation to run: linear, counter, regress")
		ext    = flag.String("ext", "", "extension to run: q (Q verification), faults (component campaign)")
		seed   = flag.Uint64("seed", 1, "random seed for stochastic experiments")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *ext != "" {
		if err := runExt(ctx, *ext, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xyzone:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(ctx, *fig, *tab, *shift, *tol, *points, *mc, *monIdx, *dies, *noise, *abl, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xyzone:", err)
		os.Exit(1)
	}
}

// printCampaign dispatches a spec through the registry and prints the
// rendered result.
func printCampaign(ctx context.Context, spec testbench.Spec) error {
	res, err := testbench.Run(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Print(res.Text)
	return nil
}

// runExt maps the extension names onto registry campaigns. Defaults for
// params the flag surface does not expose come from the registry.
func runExt(ctx context.Context, ext string, tol float64) error {
	switch ext {
	case "q", "corners", "temp", "spectral", "metric", "noisesweep", "stimopt":
		var spec testbench.Spec
		spec.Campaign = ext
		if ext == "noisesweep" {
			spec.Seed = 7
		}
		return printCampaign(ctx, spec)
	case "faults":
		return printCampaign(ctx, testbench.Spec{
			Campaign: "faults",
			Params:   testbench.FaultsParams{Tol: tol},
		})
	case "yield":
		return printCampaign(ctx, testbench.Spec{
			Campaign: "yield",
			Seed:     11,
			Params:   testbench.YieldParams{N: 400, ComponentSigma: 0.02, Tol: tol},
		})
	case "selftest":
		return printCampaign(ctx, testbench.Spec{
			Campaign: "selftest",
			Params:   testbench.SelfTestParams{Tol: tol},
		})
	default:
		return fmt.Errorf("unknown extension %q (want q, faults, temp, spectral, metric, noisesweep, yield, stimopt, selftest or corners)", ext)
	}
}

func run(ctx context.Context, fig, tab int, shift, tol float64, points int, mc bool, monIdx, dies int, noise bool, abl string, seed uint64) error {
	switch {
	case noise:
		return printCampaign(ctx, testbench.Spec{Campaign: "noise", Seed: seed})
	case abl == "linear":
		return printCampaign(ctx, testbench.Spec{Campaign: "linear"})
	case abl == "counter":
		return printCampaign(ctx, testbench.Spec{
			Campaign: "counter",
			Params:   map[string]any{"shift": shift},
		})
	case abl == "regress":
		return printCampaign(ctx, testbench.Spec{Campaign: "regress"})
	case abl != "":
		return fmt.Errorf("unknown ablation %q (want linear, counter or regress)", abl)
	case tab == 1:
		return printCampaign(ctx, testbench.Spec{Campaign: "table1"})
	case fig == 1:
		return printCampaign(ctx, testbench.Spec{
			Campaign: "fig1",
			Params:   testbench.Fig1Params{Shift: shift, Points: 512},
		})
	case fig == 4 && mc:
		return printCampaign(ctx, testbench.Spec{
			Campaign: "fig4mc",
			Seed:     seed,
			Params:   testbench.Fig4MCParams{Monitor: monIdx - 1, Dies: dies, Cols: points},
		})
	case fig == 4:
		return printCampaign(ctx, testbench.Spec{
			Campaign: "fig4",
			Params:   testbench.Fig4Params{Points: points},
		})
	case fig == 6:
		if err := printCampaign(ctx, testbench.Spec{
			Campaign: "fig6",
			Params:   testbench.Fig6Params{Shift: shift, Grid: 101},
		}); err != nil {
			return err
		}
		zm, err := zone.Build(core.Default().Bank, 0, 1, 101)
		if err != nil {
			return err
		}
		fmt.Println("\nzone partition (one glyph per zone, origin lower-left):")
		fmt.Print(zm.ASCIIArt(72, 36))
		return nil
	case fig == 7:
		res, err := testbench.Run(ctx, testbench.Spec{
			Campaign: "fig7",
			Params:   testbench.Fig7Params{Shift: shift, Points: 400},
		})
		if err != nil {
			return err
		}
		f := res.Payload.(*testbench.Fig7)
		fmt.Print(f.Render())
		fmt.Print(f.CSV())
		return nil
	case fig == 8:
		return printCampaign(ctx, testbench.Spec{
			Campaign: "fig8",
			Params:   testbench.Fig8Params{MaxDev: 0.20, Points: points, Tol: tol},
		})
	default:
		return fmt.Errorf("nothing selected; use -fig, -tab, -noise or -abl (see -h)")
	}
}
