// Command xyzone regenerates the paper's tables and figures from the
// reproduction pipeline and prints them as text or CSV.
//
// Usage:
//
//	xyzone -tab 1                 # TABLE I input configurations
//	xyzone -fig 1 [-shift 0.10]   # Lissajous traces (CSV)
//	xyzone -fig 4                 # monitor control curves (CSV)
//	xyzone -fig 4 -mc -monitor 3  # Monte Carlo envelope of one curve
//	xyzone -fig 6                 # zone codification and traversals
//	xyzone -fig 7 [-shift 0.10]   # signature chronogram + NDF
//	xyzone -fig 8 [-tol 0.05]     # NDF sweep with PASS/FAIL bands
//	xyzone -noise                 # noise detection experiment
//	xyzone -abl linear|counter|regress
//	xyzone -ext q|faults|temp|spectral|metric|noisesweep|yield|stimopt|selftest|corners
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/testbench"
	"repro/internal/zone"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (1, 4, 6, 7, 8)")
		tab    = flag.Int("tab", 0, "table number to regenerate (1)")
		shift  = flag.Float64("shift", 0.10, "fractional f0 deviation for defective CUT")
		tol    = flag.Float64("tol", 0.05, "tolerance band for Fig. 8 calibration")
		points = flag.Int("points", 41, "sweep/trace resolution")
		mc     = flag.Bool("mc", false, "with -fig 4: emit a Monte Carlo envelope")
		monIdx = flag.Int("monitor", 3, "with -mc: Table I monitor number (1-6)")
		dies   = flag.Int("dies", 200, "with -mc: Monte Carlo die count")
		noise  = flag.Bool("noise", false, "run the noise detection experiment")
		abl    = flag.String("abl", "", "ablation to run: linear, counter, regress")
		ext    = flag.String("ext", "", "extension to run: q (Q verification), faults (component campaign)")
		seed   = flag.Uint64("seed", 1, "random seed for stochastic experiments")
	)
	flag.Parse()
	if *ext != "" {
		if err := runExt(*ext, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "xyzone:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *tab, *shift, *tol, *points, *mc, *monIdx, *dies, *noise, *abl, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xyzone:", err)
		os.Exit(1)
	}
}

func runExt(ext string, tol float64) error {
	sys := core.Default()
	switch ext {
	case "q":
		e, err := testbench.RunExtQ(sys, []float64{-0.40, -0.20, -0.10, 0.10, 0.20, 0.40})
		if err != nil {
			return err
		}
		fmt.Print(e.Render())
		return nil
	case "faults":
		dec, err := sys.CalibrateFromTolerance(tol, 9)
		if err != nil {
			return err
		}
		tab, err := testbench.RunFaultTable(sys, dec, testbench.DefaultFaultSet())
		if err != nil {
			return err
		}
		fmt.Print(tab.Render())
		return nil
	case "corners":
		cd, err := testbench.RunCornerDrift(sys)
		if err != nil {
			return err
		}
		fmt.Print(cd.Render())
		return nil
	case "temp":
		td, err := testbench.RunTempDrift(sys, []float64{233, 273, 300, 323, 358, 398})
		if err != nil {
			return err
		}
		fmt.Print(td.Render())
		return nil
	case "spectral":
		a, err := testbench.RunAblSpectral(sys,
			[]float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20},
			[]float64{-0.12, -0.04, 0.07, 0.12})
		if err != nil {
			return err
		}
		fmt.Print(a.Render())
		return nil
	case "metric":
		m, err := testbench.RunAblMetric(sys,
			[]float64{-0.10, -0.05, -0.02, -0.005, 0.005, 0.02, 0.05, 0.10})
		if err != nil {
			return err
		}
		fmt.Print(m.Render())
		return nil
	case "yield":
		dec, err := testbench.CalibrateMultiParam(sys, tol)
		if err != nil {
			return err
		}
		y, err := testbench.RunYield(sys, dec, 400, 0.02, tol, 11)
		if err != nil {
			return err
		}
		fmt.Print(y.Render())
		return nil
	case "selftest":
		dec, err := sys.CalibrateFromTolerance(tol, 9)
		if err != nil {
			return err
		}
		st, err := testbench.RunSelfTest(sys, dec)
		if err != nil {
			return err
		}
		fmt.Print(st.Render())
		return nil
	case "stimopt":
		opt, err := testbench.RunStimOpt(sys, 0.05, 6)
		if err != nil {
			return err
		}
		fmt.Print(opt.Render())
		return nil
	case "noisesweep":
		ns, err := testbench.RunNoiseSweep(sys,
			[]float64{0.002, 0.005, 0.01, 0.02},
			[]float64{0.005, 0.01, 0.02, 0.05, 0.10}, 10, 7)
		if err != nil {
			return err
		}
		fmt.Print(ns.Render())
		return nil
	default:
		return fmt.Errorf("unknown extension %q (want q, faults, temp, spectral, metric, noisesweep, yield, stimopt, selftest or corners)", ext)
	}
}

func run(fig, tab int, shift, tol float64, points int, mc bool, monIdx, dies int, noise bool, abl string, seed uint64) error {
	sys := core.Default()
	switch {
	case noise:
		n, err := testbench.RunNoiseDetection(sys, 0.005,
			[]float64{0.005, 0.01, 0.02, 0.05}, 20, 20, seed)
		if err != nil {
			return err
		}
		fmt.Print(n.Render())
		return nil
	case abl == "linear":
		a, err := testbench.RunAblLinear(sys, []float64{-0.15, -0.10, -0.05, -0.02, 0.02, 0.05, 0.10, 0.15})
		if err != nil {
			return err
		}
		fmt.Print(a.Render())
		return nil
	case abl == "counter":
		a, err := testbench.RunAblCounter(sys, shift, []int{8, 12, 16}, []float64{1e6, 10e6, 100e6})
		if err != nil {
			return err
		}
		fmt.Print(a.Render())
		return nil
	case abl == "regress":
		a, err := testbench.RunAblRegression(sys,
			[]float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20},
			[]float64{-0.12, -0.04, 0.07, 0.12})
		if err != nil {
			return err
		}
		fmt.Print(a.Render())
		return nil
	case abl != "":
		return fmt.Errorf("unknown ablation %q (want linear, counter or regress)", abl)
	case tab == 1:
		fmt.Print(testbench.RunTable1().Render())
		return nil
	case fig == 1:
		f, err := testbench.RunFig1(sys, shift, 512)
		if err != nil {
			return err
		}
		fmt.Print(f.CSV())
		return nil
	case fig == 4 && mc:
		f, err := testbench.RunFig4MC(monIdx-1, dies, points, seed)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		return nil
	case fig == 4:
		f, err := testbench.RunFig4(points)
		if err != nil {
			return err
		}
		fmt.Print(f.CSV())
		return nil
	case fig == 6:
		f, err := testbench.RunFig6(sys, shift, 101)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		zm, err := zone.Build(sys.Bank, 0, 1, 101)
		if err != nil {
			return err
		}
		fmt.Println("\nzone partition (one glyph per zone, origin lower-left):")
		fmt.Print(zm.ASCIIArt(72, 36))
		return nil
	case fig == 7:
		f, err := testbench.RunFig7(sys, shift, 400)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		fmt.Print(f.CSV())
		return nil
	case fig == 8:
		f, err := testbench.RunFig8(sys, 0.20, points, tol)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		return nil
	default:
		return fmt.Errorf("nothing selected; use -fig, -tab, -noise or -abl (see -h)")
	}
}
