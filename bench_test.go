// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index).
// Each benchmark regenerates its artifact end to end and reports the
// headline quantity through b.ReportMetric so `go test -bench=.` prints
// the paper-vs-measured comparison alongside timing.
package repro

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/biquad"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/ndf"
	"repro/internal/rng"
	"repro/internal/signature"
	"repro/internal/spice"
	"repro/internal/testbench"
	"repro/internal/wave"
	"repro/internal/zone"
)

// FIG1: Lissajous composition, nominal vs +10% f0 (Fig. 1).
func BenchmarkFig1Lissajous(b *testing.B) {
	sys := core.Default()
	var maxDev float64
	for i := 0; i < b.N; i++ {
		f, err := testbench.RunFig1(sys, 0.10, 512)
		if err != nil {
			b.Fatal(err)
		}
		maxDev = 0
		for j := range f.Golden {
			dx := f.Golden[j].X - f.Defective[j].X
			dy := f.Golden[j].Y - f.Defective[j].Y
			if d := dx*dx + dy*dy; d > maxDev {
				maxDev = d
			}
		}
	}
	b.ReportMetric(maxDev, "maxdev²")
}

// TAB1: the six monitor configurations (Table I).
func BenchmarkTable1Configs(b *testing.B) {
	var curves int
	for i := 0; i < b.N; i++ {
		curves = 0
		for _, cfg := range monitor.TableI() {
			a, err := monitor.NewAnalytic(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if pts := a.TraceBoundary(0, 1, 21); len(pts) > 0 {
				curves++
			}
		}
	}
	b.ReportMetric(float64(curves), "curves")
}

// FIG4: experimental control curves from the transistor-level monitor
// (one MNA-extracted boundary point per iteration) next to the analytic
// family.
func BenchmarkFig4Boundaries(b *testing.B) {
	f, err := testbench.RunFig4(41)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, c := range f.Curves {
		total += len(c)
	}
	sm, err := monitor.NewSpice(monitor.TableI()[2], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var y float64
	for i := 0; i < b.N; i++ {
		var ok bool
		y, ok = sm.BoundaryY(0.4, 0, 1)
		if !ok {
			b.Fatal("no boundary at x=0.4")
		}
	}
	b.ReportMetric(float64(total), "analytic_pts")
	b.ReportMetric(y, "spice_y@0.4")
}

// FIG4-MC: Monte Carlo envelope of curve 3 (process + mismatch).
func BenchmarkFig4MonteCarlo(b *testing.B) {
	var inside float64
	for i := 0; i < b.N; i++ {
		env, err := testbench.RunFig4MC(2, 60, 15, 7)
		if err != nil {
			b.Fatal(err)
		}
		inside = env.NominalInsideEnvelope()
	}
	b.ReportMetric(inside, "nominal_inside")
}

// FIG6: zone codification — partition size and Gray-property check.
func BenchmarkFig6ZoneMap(b *testing.B) {
	bank := monitor.NewAnalyticTableI()
	var zones, violations int
	for i := 0; i < b.N; i++ {
		zm, err := zone.Build(bank, 0, 1, 101)
		if err != nil {
			b.Fatal(err)
		}
		zones = zm.NumZones()
		violations = len(zm.GrayViolations())
	}
	b.ReportMetric(float64(zones), "zones")
	b.ReportMetric(float64(violations), "gray_violations")
}

// FIG7: signature chronogram and the headline NDF = 0.1021 at +10%.
func BenchmarkFig7Chronogram(b *testing.B) {
	sys := core.Default()
	var v float64
	for i := 0; i < b.N; i++ {
		f, err := testbench.RunFig7(sys, 0.10, 400)
		if err != nil {
			b.Fatal(err)
		}
		v = f.NDF
	}
	// Paper reference value: 0.1021.
	b.ReportMetric(v, "NDF@+10%")
}

// FIG8: the NDF-vs-deviation acceptance curve.
func BenchmarkFig8NDFSweep(b *testing.B) {
	sys := core.Default()
	var left, right float64
	for i := 0; i < b.N; i++ {
		f, err := testbench.RunFig8(sys, 0.20, 9, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		left, right = f.NDFs[0], f.NDFs[len(f.NDFs)-1]
	}
	b.ReportMetric(left, "NDF@-20%")
	b.ReportMetric(right, "NDF@+20%")
}

// NOISE: detectability of 1% deviations under 3σ = 0.015 V noise.
func BenchmarkNoiseDetection(b *testing.B) {
	sys := core.Default()
	var det1 float64
	for i := 0; i < b.N; i++ {
		n, err := testbench.RunNoiseDetection(sys, 0.005, []float64{0.01}, 8, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
		det1 = n.Detect[0]
	}
	b.ReportMetric(det1, "detect@1%")
}

// ABL-LIN: straight-line zoning baseline (refs [12][13]).
func BenchmarkAblationLinearZoning(b *testing.B) {
	sys := core.Default()
	var ratio float64
	for i := 0; i < b.N; i++ {
		a, err := testbench.RunAblLinear(sys, []float64{-0.10, 0.10})
		if err != nil {
			b.Fatal(err)
		}
		ratio = a.LinearUm2 / a.NonlinearUm2
	}
	b.ReportMetric(ratio, "area_ratio_linear/nonlinear")
}

// ABL-CNT: counter width / master clock quantization.
func BenchmarkAblationCounter(b *testing.B) {
	sys := core.Default()
	var worst float64
	for i := 0; i < b.N; i++ {
		a, err := testbench.RunAblCounter(sys, 0.10, []int{8, 16}, []float64{1e6, 10e6})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range a.AbsErr {
			for _, e := range row {
				if e > worst {
					worst = e
				}
			}
		}
	}
	b.ReportMetric(worst, "worst_NDF_error")
}

// ABL-REG: alternate-test regression baseline (ref [11]).
func BenchmarkAblationRegression(b *testing.B) {
	sys := core.Default()
	var rmse float64
	for i := 0; i < b.N; i++ {
		a, err := testbench.RunAblRegression(sys,
			[]float64{-0.20, -0.15, -0.10, -0.06, -0.03, 0, 0.03, 0.06, 0.10, 0.15, 0.20},
			[]float64{-0.12, -0.04, 0.07, 0.12})
		if err != nil {
			b.Fatal(err)
		}
		rmse = a.TestRMSE
	}
	b.ReportMetric(rmse, "heldout_RMSE")
}

// EXT-Q: Q-verification extension (band-pass observation).
func BenchmarkExtensionQVerification(b *testing.B) {
	sys := core.Default()
	var bp20 float64
	for i := 0; i < b.N; i++ {
		e, err := testbench.RunExtQ(sys, []float64{0.20})
		if err != nil {
			b.Fatal(err)
		}
		bp20 = e.BPNDF[0]
	}
	b.ReportMetric(bp20, "BP_NDF@Q+20%")
}

// EXT-FAULTS: component-level fault campaign on the Tow-Thomas design.
func BenchmarkExtensionFaultCampaign(b *testing.B) {
	sys := core.Default()
	dec, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		b.Fatal(err)
	}
	var coverage float64
	for i := 0; i < b.N; i++ {
		tab, err := testbench.RunFaultTable(sys, dec, testbench.DefaultFaultSet())
		if err != nil {
			b.Fatal(err)
		}
		coverage = tab.Coverage()
	}
	b.ReportMetric(coverage, "coverage")
}

// ABL-MET: NDF vs sequence edit distance (ref [12] comparison style).
func BenchmarkAblationMetric(b *testing.B) {
	sys := core.Default()
	var ndfRes, editRes float64
	for i := 0; i < b.N; i++ {
		a, err := testbench.RunAblMetric(sys, []float64{-0.05, -0.02, -0.005, 0.005, 0.02, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		ndfRes, editRes = a.SmallestMoved()
	}
	b.ReportMetric(ndfRes, "NDF_resolution")
	b.ReportMetric(editRes, "edit_resolution")
}

// EXT-TEMP: spurious NDF of a golden CUT vs monitor temperature.
func BenchmarkExtensionTempDrift(b *testing.B) {
	sys := core.Default()
	var at350 float64
	for i := 0; i < b.N; i++ {
		td, err := testbench.RunTempDrift(sys, []float64{350})
		if err != nil {
			b.Fatal(err)
		}
		at350 = td.NDFs[0]
	}
	b.ReportMetric(at350, "NDF@350K")
}

// ABL-SPEC: dwell features vs Goertzel spectral features.
func BenchmarkAblationSpectral(b *testing.B) {
	sys := core.Default()
	var rmse float64
	for i := 0; i < b.N; i++ {
		a, err := testbench.RunAblSpectral(sys,
			[]float64{-0.20, -0.10, -0.03, 0, 0.03, 0.10, 0.20},
			[]float64{-0.12, 0.07})
		if err != nil {
			b.Fatal(err)
		}
		rmse = a.SpectralRMSE
	}
	b.ReportMetric(rmse, "spectral_RMSE")
}

// NOISE-SWEEP: resolution vs noise level.
func BenchmarkNoiseResolutionSweep(b *testing.B) {
	sys := core.Default()
	var at5mV float64
	for i := 0; i < b.N; i++ {
		ns, err := testbench.RunNoiseSweep(sys, []float64{0.005},
			[]float64{0.005, 0.01, 0.02, 0.05}, 6, 7)
		if err != nil {
			b.Fatal(err)
		}
		at5mV = ns.MinDetectable[0]
	}
	b.ReportMetric(at5mV, "min_detectable@5mV")
}

// Pipeline micro-benchmarks (engineering numbers, not paper artifacts).

func BenchmarkSignatureCapture(b *testing.B) {
	sys := core.Default()
	cut, err := sys.Shifted(0.10)
	if err != nil {
		b.Fatal(err)
	}
	cls, err := sys.Classifier(cut, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signature.Capture(cls, sys.Period(), sys.Capture); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSignature(b *testing.B) {
	sys := core.Default()
	cut, err := sys.Shifted(0.10)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sys.ExactSignature(cut); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNDFExact(b *testing.B) {
	sys := core.Default()
	g, err := sys.GoldenSignature()
	if err != nil {
		b.Fatal(err)
	}
	cut, err := sys.Shifted(0.10)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sys.ExactSignature(cut)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ndf.NDF(d, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBankClassify(b *testing.B) {
	bank := monitor.NewAnalyticTableI()
	src := rng.New(1)
	xs := make([]float64, 1024)
	ys := make([]float64, 1024)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Classify(xs[i%1024], ys[i%1024])
	}
}

// BANK-BATCH: the certified zone LUT classifying the same random points
// in one call (compare per-point cost against BenchmarkBankClassify).
func BenchmarkBankClassifyBatch(b *testing.B) {
	bank := monitor.NewAnalyticTableI()
	src := rng.New(1)
	xs := make([]float64, 1024)
	ys := make([]float64, 1024)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	codes := make([]monitor.Code, len(xs))
	bank.ClassifyBatch(xs, ys, codes) // build the LUT before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.ClassifyBatch(xs, ys, codes)
	}
}

// SIG-BATCH: the batched tick-grid capture (cached stimulus grid, batch
// output evaluation, zone-LUT classification, codes-slice walk) — the
// per-period unit of every campaign. Compare against
// BenchmarkSignatureCaptureScalar, the retained per-tick baseline.
func BenchmarkSignatureCaptureBatched(b *testing.B) {
	benchmarkSignatureCaptureEngine(b, false)
}

// SIG-SCALAR: the retained scalar per-tick capture pipeline (the
// pre-batching engine, kept as the certification baseline).
func BenchmarkSignatureCaptureScalar(b *testing.B) {
	benchmarkSignatureCaptureEngine(b, true)
}

func benchmarkSignatureCaptureEngine(b *testing.B, scalar bool) {
	sys := core.Default()
	sys.Scalar = scalar
	cut, err := sys.Shifted(0.10)
	if err != nil {
		b.Fatal(err)
	}
	sc := core.NewTrialScratch()
	if _, err := sys.CapturedSignatureScratch(cut, 0, nil, sc); err != nil {
		b.Fatal(err) // also warms the LUT and grid caches
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.CapturedSignatureScratch(cut, 0, nil, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// NDF-AVG-BATCH / NDF-AVG-SCALAR: the noisy averaged-NDF measurement —
// the per-trial unit of the noise detection, resolution and yield
// campaigns — on the batched and on the retained scalar engine.
func BenchmarkAveragedNDFBatched(b *testing.B) {
	benchmarkAveragedNDFEngine(b, false)
}

func BenchmarkAveragedNDFScalar(b *testing.B) {
	benchmarkAveragedNDFEngine(b, true)
}

func benchmarkAveragedNDFEngine(b *testing.B, scalar bool) {
	sys := core.Default()
	sys.Scalar = scalar
	cut, err := sys.Shifted(0.02)
	if err != nil {
		b.Fatal(err)
	}
	sc := core.NewTrialScratch()
	src := rng.New(3)
	if _, err := sys.AveragedNDFScratch(cut, 0.005, src.Split(0), 1, sc); err != nil {
		b.Fatal(err) // warm caches outside the timing loop
	}
	var v float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err = sys.AveragedNDFScratch(cut, 0.005, src.Split(uint64(i)), 4, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v, "NDF")
}

func BenchmarkSpiceMonitorBit(b *testing.B) {
	sm, err := monitor.NewSpice(monitor.TableI()[2], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.BitErr(0.4, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// EXT-YIELD: production yield/escape/overkill simulation.
func BenchmarkExtensionYield(b *testing.B) {
	sys := core.Default()
	dec, err := testbench.CalibrateMultiParam(sys, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	var defect, overkill float64
	for i := 0; i < b.N; i++ {
		y, err := testbench.RunYield(sys, dec, 120, 0.02, 0.05, 11)
		if err != nil {
			b.Fatal(err)
		}
		defect, overkill = y.DefectLevel(), y.OverkillRate()
	}
	b.ReportMetric(defect, "defect_level")
	b.ReportMetric(overkill, "overkill")
}

// EXT-CORNERS: spurious NDF of a golden CUT at foundry corners.
func BenchmarkExtensionCorners(b *testing.B) {
	sys := core.Default()
	var ss float64
	for i := 0; i < b.N; i++ {
		cd, err := testbench.RunCornerDrift(sys)
		if err != nil {
			b.Fatal(err)
		}
		ss = cd.NDFs[1]
	}
	b.ReportMetric(ss, "NDF@SS")
}

// TRANSIENT-LIN: the linear fast path of the SPICE transient engine on
// the Tow-Thomas netlist (one LU factorization, one solve per step).
func BenchmarkTransientTowThomasLinear(b *testing.B) {
	benchmarkTransientTowThomas(b, false)
}

// TRANSIENT-NEWTON: the same transient with the per-step Newton loop
// forced (the pre-fast-path baseline). The Linear benchmark must be ≥5×
// faster than this one.
func BenchmarkTransientTowThomasNewton(b *testing.B) {
	benchmarkTransientTowThomas(b, true)
}

func benchmarkTransientTowThomas(b *testing.B, forceNewton bool) {
	comps, err := biquad.DesignTowThomas(biquad.Params{F0: 10e3, Q: 0.9, Gain: 1}, 1e-9)
	if err != nil {
		b.Fatal(err)
	}
	stim := core.Default().Stimulus
	ws := spice.NewWorkspace()
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckt, nodes, err := comps.Netlist()
		if err != nil {
			b.Fatal(err)
		}
		vin, ok := ckt.FindElement("VIN").(*spice.VSource)
		if !ok {
			b.Fatal("netlist has no VIN source")
		}
		vin.SetWaveform(stim)
		ts := spice.NewTransientSolverWS(ckt, spice.Options{Trapezoid: true, ForceNewton: forceNewton}, ws)
		lp := ckt.Node(nodes.LP)
		err = ts.Run(stim.Period(), 2048, func(k int, t float64, sol *spice.Solution) {
			last = sol.VoltageAt(lp)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last, "v_lp_final")
}

// CUT-SPICE: one full SPICE-backend output materialization (settling +
// capture period) — the per-trial unit of a SPICE-backed campaign.
func BenchmarkSpiceCUTOutput(b *testing.B) {
	sys, err := core.DefaultSpice()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cut, err := sys.Shifted(0.10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cut.Output(sys.Stimulus, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// CUT-SPICE-TEMPLATE: the same per-trial unit as BenchmarkSpiceCUTOutput
// served through a per-worker circuit template — the campaign fast path
// (perturb, refresh element values, settle + capture on the compiled
// template). The ratio to BenchmarkSpiceCUTOutput is the per-trial
// speedup the trial-template engine buys; TestSpiceTrialEnginePinnedSpeedup
// pins it.
func BenchmarkSpiceTrialEngine(b *testing.B) {
	sys, err := core.DefaultSpice()
	if err != nil {
		b.Fatal(err)
	}
	var sc biquad.SpiceTrialScratch
	trial := func() error {
		cut, err := sys.Shifted(0.10)
		if err != nil {
			return err
		}
		_, err = cut.(*biquad.SpiceCUT).OutputScratch(sys.Stimulus, 0, &sc)
		return err
	}
	if err := trial(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trial(); err != nil {
			b.Fatal(err)
		}
	}
}

// CUT-SPICE-BATCH: the same trials as BenchmarkSpiceTrialEngine served
// through the cross-trial batched engine — blocks of deviated CUTs run
// interleaved through the fused solve kernel, one op per trial. The
// ratio to BenchmarkSpiceTrialEngine is what cross-trial latency hiding
// buys on top of the per-trial template reuse.
func BenchmarkSpiceTrialEngineBatch(b *testing.B) {
	sys, err := core.DefaultSpice()
	if err != nil {
		b.Fatal(err)
	}
	cuts := make([]*biquad.SpiceCUT, spice.BatchLanes)
	for i := range cuts {
		cut, err := sys.Shifted(0.10)
		if err != nil {
			b.Fatal(err)
		}
		cuts[i] = cut.(*biquad.SpiceCUT)
	}
	var sb biquad.SpiceTrialBatch
	emit := func(i int, w wave.Waveform) error { return nil }
	if err := biquad.SpiceOutputBatch(cuts, sys.Stimulus, 0, &sb, emit); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += len(cuts) {
		n := b.N - done
		if n > len(cuts) {
			n = len(cuts)
		}
		if err := biquad.SpiceOutputBatch(cuts[:n], sys.Stimulus, 0, &sb, emit); err != nil {
			b.Fatal(err)
		}
	}
}

// CAMPAIGN-SPICE: the reduced fault-table campaign on the SPICE backend
// (the cmd/mcmon -backend=spice path).
func BenchmarkFaultTableSpice(b *testing.B) {
	sys, err := core.DefaultSpice()
	if err != nil {
		b.Fatal(err)
	}
	faults := []biquad.Fault{
		{Kind: biquad.FaultParametric, Target: biquad.TargetR, Frac: 0.10},
		{Kind: biquad.FaultOpen, Target: biquad.TargetRQ},
		{Kind: biquad.FaultShort, Target: biquad.TargetC},
	}
	var coverage float64
	for i := 0; i < b.N; i++ {
		tab, err := testbench.RunFaultTable(sys, ndf.Decision{Threshold: 0.02}, faults)
		if err != nil {
			b.Fatal(err)
		}
		coverage = tab.Coverage()
	}
	b.ReportMetric(coverage, "coverage")
}

// EXT-BIST: stuck-at monitor faults detected by the golden comparison.
func BenchmarkExtensionSelfTest(b *testing.B) {
	sys := core.Default()
	dec, err := sys.CalibrateFromTolerance(0.05, 9)
	if err != nil {
		b.Fatal(err)
	}
	var cov float64
	for i := 0; i < b.N; i++ {
		st, err := testbench.RunSelfTest(sys, dec)
		if err != nil {
			b.Fatal(err)
		}
		cov = st.Coverage()
	}
	b.ReportMetric(cov, "stuckat_coverage")
}

// API: registry-dispatch overhead — a full Run (spec decode, registry
// lookup, option resolution, envelope assembly) around the cheapest
// campaign, so the number is dominated by the dispatch machinery the PR 4
// redesign put in front of every campaign, not by the campaign itself.
func BenchmarkRegistryDispatch(b *testing.B) {
	ctx := context.Background()
	var zones int
	for i := 0; i < b.N; i++ {
		res, err := testbench.Run(ctx, testbench.Spec{Campaign: "table1"})
		if err != nil {
			b.Fatal(err)
		}
		zones = len(res.Payload.(*testbench.Table1).Configs)
	}
	b.ReportMetric(float64(zones), "configs")
}

// API: the same dispatch from raw JSON — the mcserved HTTP body path,
// including the strict params decode.
func BenchmarkRegistryDispatchJSON(b *testing.B) {
	ctx := context.Background()
	body := []byte(`{"campaign":"fig1","workers":1,"params":{"shift":0.1,"points":16}}`)
	for i := 0; i < b.N; i++ {
		var spec testbench.Spec
		if err := json.Unmarshal(body, &spec); err != nil {
			b.Fatal(err)
		}
		if _, err := testbench.Run(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// ENGINE-REDUCE / ENGINE-RUN: the campaign engine's per-trial overhead
// on a million trivial trials — the streaming reduction against the
// materializing worker pool. Reduce's win (no result slots, chunked
// progress ticks) is pinned >= 1.5x by TestReducePinnedThroughput; the
// allocation column is the O(trials)-vs-O(workers) memory story.
func BenchmarkCampaignReduce1M(b *testing.B) {
	ctx := context.Background()
	red := campaign.Reducer[float64, float64]{
		Fold:  func(a float64, _ int, v float64) float64 { return a + v },
		Merge: func(a, c float64) float64 { return a + c },
	}
	b.ReportAllocs()
	var sum float64
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = campaign.Reduce(ctx, campaign.Engine{Workers: 1}, 1_000_000, red,
			func(i int) (float64, error) { return float64(i & 1), nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum, "sum")
}

func BenchmarkCampaignRun1M(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	var out []float64
	for i := 0; i < b.N; i++ {
		var err error
		out, err = campaign.Run(ctx, campaign.Engine{Workers: 1}, 1_000_000,
			func(i int) (float64, error) { return float64(i & 1), nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out)), "slots")
}

// ENGINE-CKPT: the durable fabric's checkpoint tax on the streaming
// reduction — a million trivial trials through campaign.ReduceSpan with
// no sink, with the default cadence (one serialized accumulator every
// 65536 trials, the fabric's job-log append), and with an aggressively
// short cadence. The off-vs-default gap is pinned < 5% by
// TestCheckpointOverheadPinned; "default" is the benchdiff-pinned
// variant.
func BenchmarkCheckpointOverhead(b *testing.B) {
	for _, bc := range []struct {
		name    string
		cadence int
		sink    bool
	}{
		{name: "off", cadence: 0, sink: false},
		{name: "default", cadence: campaign.DefaultCheckpoint, sink: true},
		{name: "cadence4096", cadence: 4096, sink: true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ctx := context.Background()
			e := campaign.Engine{Workers: 1, Checkpoint: bc.cadence}
			span := campaign.Span{Lo: 0, Hi: 1_000_000}
			var ckpt campaign.CheckpointFunc[float64]
			var blobs, bytes int
			if bc.sink {
				ckpt = func(acc float64, through int) error {
					// The per-checkpoint work a fabric worker pays: encode
					// the accumulator and hand the blob to the store layer.
					var buf [16]byte
					binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(acc))
					binary.LittleEndian.PutUint64(buf[8:], uint64(through))
					blobs++
					bytes += len(buf)
					return nil
				}
			}
			b.ReportAllocs()
			var sum float64
			for i := 0; i < b.N; i++ {
				var err error
				sum, err = campaign.ReduceSpan(ctx, e, span, nil, ckpt, sumRed(), trivialTrial)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sum, "sum")
			if b.N > 0 {
				b.ReportMetric(float64(blobs)/float64(b.N), "ckpts/op")
			}
			_ = bytes
		})
	}
}

// EXT-YIELD-STREAM: the streamed production-yield campaign at 10k dies
// on a reduced scan resolution — the registry + reduction path of a
// million-die run, sized for the benchmark budget. Allocations stay
// O(workers + chunk) however many dies the spec names.
func BenchmarkYieldStreaming10k(b *testing.B) {
	sys := core.Default()
	sys.ScanN = 64
	thr := 0.03
	ctx := context.Background()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := testbench.Run(ctx, testbench.Spec{
			Campaign: "yield",
			Seed:     1,
			Params:   testbench.YieldParams{N: 10_000, ComponentSigma: 0.02, Tol: 0.05, Threshold: &thr},
		}, testbench.WithSystem(sys))
		if err != nil {
			b.Fatal(err)
		}
		rate = res.Payload.(*testbench.Yield).YieldRate()
	}
	b.ReportMetric(rate, "yield_rate")
}
